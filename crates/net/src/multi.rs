//! Multi-source ingestion: N concurrent record feeds merged into one
//! deterministic, watermark-aligned stream.
//!
//! The paper's telescope is a single vantage point, but real
//! deployments fuse many (reactive networks, backscatter feeds, per-PoP
//! taps). [`SourceSet`] drives one producer thread per
//! [`StreamSource`] behind a bounded queue (backpressure: a producer
//! blocks when its queue is full, so a fast feed can never balloon
//! memory while a slow feed catches up) and merges the feeds through an
//! event-time min-heap keyed by `(timestamp, source index)`.
//!
//! **Batched transfer.** Producers hand records over in whole batches
//! (target [`SourceSetConfig::batch_records`], sized like the zero-copy
//! tier's `RecordBatch`) rather than one at a time: one lock round-trip
//! and one wakeup amortize over thousands of records, which is what
//! closes the fan-in gap to the single-source path on small machines.
//! The queue capacity still bounds *records*, not batches — producers
//! cap their batches at the capacity, so `queue_peak <= capacity`
//! holds exactly as it did for per-record hand-off.
//!
//! **Run-based merging.** Since each feed is internally time-sorted,
//! the consumer emits *runs*, not records: after popping the winning
//! feed off the heap it finds — by galloping binary search — the prefix
//! of that feed's head batch ordered strictly before the next competing
//! feed's head in the `(timestamp, source index)` order, and emits the
//! whole prefix with a single heap adjustment. See DESIGN.md §12 for
//! the determinism argument.
//!
//! **Determinism.** The heap holds exactly one head entry per live
//! source, so the next emitted run is a pure function of the per-source
//! head timestamps — thread scheduling, queue depths, batch boundaries,
//! and rate limits can change *when* records become available, never
//! *which order* they merge in. [`merge_records`] is the same function
//! stated synchronously; `SourceSet` over any split of a trace is
//! record-for-record equal to it, which is the contract
//! `tests/multi_source.rs` proves against the live engine.
//!
//! **Watermark alignment.** A record with timestamp `t` is emitted only
//! once every live source has offered a head `>= t` (or terminated), so
//! an out-of-phase feed can never push the sessionizer's watermark past
//! records a lagging feed still holds. Within a single source the usual
//! guard reorder tolerance applies unchanged.
//!
//! **Fault handling.** A source that reports an error (or fails to
//! open) is reopened through its [`SourceFactory`] and fast-forwarded
//! past the records already enqueued — resume-on-reconnect, invisible
//! to the consumer. A source that keeps failing without making progress
//! is abandoned ([`SourceStats::dead`]) and the set continues on the
//! remaining feeds; an instantly-EOF (e.g. empty) source is drained and
//! counted, never fatal.

use crate::capture::CaptureError;
use crate::record::PacketRecord;
use crate::stream::{MemoryStream, StreamSource};
use crate::time::Timestamp;
use crate::zerocopy::DEFAULT_BATCH;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration as StdDuration, Instant};

/// A boxed stream source that can be handed to a producer thread.
pub type DynSource = Box<dyn StreamSource + Send>;

/// Opens (and re-opens) a feed's underlying stream.
///
/// A factory is the unit of reconnect-with-resume: after a source
/// failure the producer calls `open` again and skips the records it
/// already delivered, so a replayable source (file, in-memory vector)
/// resumes exactly where it left off. Any `FnMut` closure returning a
/// [`DynSource`] is a factory.
pub trait SourceFactory: Send {
    /// Opens a fresh session of the stream, starting from its
    /// beginning.
    fn open(&mut self) -> Result<DynSource, CaptureError>;

    /// Human-readable vantage label for this feed, recorded once at
    /// spawn time and surfaced through [`SourceSet::labels`] — the
    /// qlog export tags its trace's vantage point with these.
    fn label(&self) -> String {
        "unnamed".to_string()
    }
}

impl<F> SourceFactory for F
where
    F: FnMut() -> Result<DynSource, CaptureError> + Send,
{
    fn open(&mut self) -> Result<DynSource, CaptureError> {
        self()
    }
}

/// Tuning knobs for a [`SourceSet`].
#[derive(Debug, Clone)]
pub struct SourceSetConfig {
    /// Bounded per-source queue capacity, records (`--source-queue`).
    /// Producers block when their queue is full.
    pub queue_capacity: usize,
    /// Target records per producer batch (`--source-batch`). Batches
    /// are additionally capped at the queue capacity (so a full batch
    /// always fits) and, under pacing, at ~20 ms worth of records (so
    /// arrival shaping stays smooth). Batch boundaries can never change
    /// the merged record order.
    pub batch_records: usize,
    /// Per-source pacing, records per second (`--source-rate`); `None`
    /// replays at full speed. Pacing shapes arrival timing only — it
    /// can never change the merged record order.
    pub rate_limit: Option<u64>,
    /// Consecutive no-progress failures tolerated before a source is
    /// abandoned. A reconnect that advances past the source's previous
    /// high-water mark resets the count.
    pub max_reconnects: u32,
}

impl Default for SourceSetConfig {
    fn default() -> Self {
        SourceSetConfig {
            queue_capacity: 4096,
            batch_records: DEFAULT_BATCH,
            rate_limit: None,
            max_reconnects: 8,
        }
    }
}

/// Per-source telemetry, readable at any time via [`SourceSet::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Records delivered to the consumer through the merge. After a
    /// [`SourceSet::resume`] this continues from the restored cursor,
    /// so it is an absolute stream position.
    pub delivered: u64,
    /// Records the producer pushed into the queue in this run
    /// (excludes any resume fast-forward).
    pub produced: u64,
    /// Batches the producer pushed into the queue in this run.
    pub batches: u64,
    /// Reconnect attempts made after a failure.
    pub reconnects: u64,
    /// Failed sessions skipped over (corrupt record hit or open error).
    pub drops: u64,
    /// The source ran dry cleanly.
    pub eof: bool,
    /// The source was abandoned after `max_reconnects` consecutive
    /// failures without forward progress.
    pub dead: bool,
    /// Records currently buffered (queued batches plus the partially
    /// consumed merge head batch).
    pub queue_depth: usize,
    /// Highest queue occupancy observed, records; never exceeds the
    /// configured capacity.
    pub queue_peak: usize,
}

/// How a feed's producer ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeedEnd {
    /// Source ran dry.
    Eof,
    /// Abandoned after repeated no-progress failures.
    Dead,
}

#[derive(Debug)]
struct FeedState {
    /// Whole batches in flight; `queued` tracks their record total,
    /// which is what the capacity bounds.
    queue: VecDeque<Vec<PacketRecord>>,
    queued: usize,
    terminal: Option<FeedEnd>,
    /// Consumer gone: producers stop pushing and exit.
    closed: bool,
    produced: u64,
    batches: u64,
    reconnects: u64,
    drops: u64,
    peak: usize,
}

/// One bounded MPSC-of-one queue between a producer thread and the
/// merging consumer, with both-ways blocking (backpressure on the
/// producer, watermark wait on the consumer). The unit of transfer is
/// a whole record batch; the capacity is still counted in records.
#[derive(Debug)]
struct FeedShared {
    capacity: usize,
    state: Mutex<FeedState>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl FeedShared {
    fn new(capacity: usize) -> Self {
        FeedShared {
            capacity: capacity.max(1),
            state: Mutex::new(FeedState {
                queue: VecDeque::new(),
                queued: 0,
                terminal: None,
                closed: false,
                produced: 0,
                batches: 0,
                reconnects: 0,
                drops: 0,
                peak: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Producer side: blocks while the whole batch does not fit under
    /// the record capacity. Returns `false` when the consumer has gone
    /// away. Batches are non-empty and never exceed the capacity (the
    /// producer caps them), so progress is always possible and the
    /// observed peak never exceeds the capacity.
    fn push_batch(&self, batch: Vec<PacketRecord>) -> bool {
        debug_assert!(!batch.is_empty(), "producers never push empty batches");
        debug_assert!(batch.len() <= self.capacity, "batches are capacity-capped");
        let mut state = self.state.lock().expect("feed lock");
        while state.queued + batch.len() > self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("feed lock");
        }
        if state.closed {
            return false;
        }
        state.queued += batch.len();
        state.produced += batch.len() as u64;
        state.batches += 1;
        state.peak = state.peak.max(state.queued);
        state.queue.push_back(batch);
        self.not_empty.notify_one();
        true
    }

    /// Consumer side: blocks until a batch is available or the feed
    /// has terminated (then `None`, permanently). Returned batches are
    /// never empty.
    fn pop_batch(&self) -> Option<Vec<PacketRecord>> {
        let mut state = self.state.lock().expect("feed lock");
        loop {
            if let Some(batch) = state.queue.pop_front() {
                state.queued -= batch.len();
                self.not_full.notify_one();
                return Some(batch);
            }
            if state.terminal.is_some() {
                return None;
            }
            state = self.not_empty.wait(state).expect("feed lock");
        }
    }

    fn finish(&self, end: FeedEnd) {
        let mut state = self.state.lock().expect("feed lock");
        if state.terminal.is_none() {
            state.terminal = Some(end);
        }
        self.not_empty.notify_all();
    }

    /// Consumer shutdown: wakes and releases the producer.
    fn close(&self) {
        let mut state = self.state.lock().expect("feed lock");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().expect("feed lock").closed
    }

    fn add_reconnect(&self) {
        self.state.lock().expect("feed lock").reconnects += 1;
    }

    fn add_drop(&self) {
        self.state.lock().expect("feed lock").drops += 1;
    }

    fn stats(&self) -> SourceStats {
        let state = self.state.lock().expect("feed lock");
        SourceStats {
            delivered: 0, // filled in by SourceSet
            produced: state.produced,
            batches: state.batches,
            reconnects: state.reconnects,
            drops: state.drops,
            eof: state.terminal == Some(FeedEnd::Eof),
            dead: state.terminal == Some(FeedEnd::Dead),
            queue_depth: state.queued,
            queue_peak: state.peak,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ProducerConfig {
    batch_records: usize,
    rate_limit: Option<u64>,
    max_reconnects: u32,
}

/// Sleeps until `pushed` records are due under `rate`, in short slices
/// so a consumer shutdown is noticed promptly.
fn pace(shared: &FeedShared, started: Instant, pushed: u64, rate: u64) {
    let target = StdDuration::from_secs_f64(pushed as f64 / rate.max(1) as f64);
    loop {
        let elapsed = started.elapsed();
        if elapsed >= target || shared.is_closed() {
            return;
        }
        std::thread::sleep((target - elapsed).min(StdDuration::from_millis(20)));
    }
}

/// Pushes the accumulated batch, pacing first when a rate limit is
/// set. Advances the cursor by the records handed over. Returns
/// `false` when the consumer has gone away.
fn flush_batch(
    shared: &FeedShared,
    batch: &mut Vec<PacketRecord>,
    batch_cap: usize,
    cursor: &mut u64,
    resume_from: u64,
    started: Option<Instant>,
    rate_limit: Option<u64>,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    if let (Some(rate), Some(started)) = (rate_limit, started) {
        pace(shared, started, *cursor - resume_from, rate);
        if shared.is_closed() {
            return false;
        }
    }
    let pushed = batch.len() as u64;
    if !shared.push_batch(std::mem::replace(batch, Vec::with_capacity(batch_cap))) {
        return false;
    }
    *cursor += pushed;
    true
}

/// The per-source producer loop: open → fast-forward to the cursor →
/// accumulate a batch → pace → push, reconnecting on failure and
/// abandoning the source after `max_reconnects` consecutive failures
/// without forward progress.
///
/// Unpaced producers (`rate_limit: None`) do **zero** wall-clock work:
/// no `Instant::now()` is ever taken, per record or per batch. Under a
/// rate limit the clock is read once per batch flush, never per record.
fn run_producer(
    mut factory: Box<dyn SourceFactory>,
    shared: &FeedShared,
    resume_from: u64,
    config: ProducerConfig,
) {
    let started = config.rate_limit.map(|_| Instant::now());
    // A full batch must always fit under the queue's record capacity;
    // under pacing, batches shrink to ~20 ms of records so the shaped
    // arrival stays smooth instead of arriving in rate/limit bursts.
    let pace_cap = config
        .rate_limit
        .map_or(usize::MAX, |rate| (rate / 50).max(1) as usize);
    let batch_cap = config.batch_records.min(pace_cap).clamp(1, shared.capacity);
    // Absolute stream position of the next record to push; starts at
    // the restored cursor and only ever grows.
    let mut cursor = resume_from;
    // Highest absolute position any session has reached. A session that
    // pushes past it made real progress, which resets the failure
    // budget — a flaky-but-advancing source is never abandoned.
    let mut best = resume_from;
    let mut failures: u32 = 0;
    let mut batch: Vec<PacketRecord> = Vec::with_capacity(batch_cap);
    loop {
        if shared.is_closed() {
            return;
        }
        if let Ok(mut source) = factory.open() {
            let mut failed_session = false;
            let mut pos: u64 = 0;
            // The reopened stream starts from its beginning: skip what
            // was already delivered.
            while pos < cursor {
                match source.next_record() {
                    Some(Ok(_)) => pos += 1,
                    Some(Err(_)) => {
                        failed_session = true;
                        break;
                    }
                    None => {
                        // The stream shrank below the cursor; nothing
                        // further can be delivered without duplicating.
                        shared.finish(FeedEnd::Eof);
                        return;
                    }
                }
            }
            while !failed_session {
                match source.next_record() {
                    Some(Ok(record)) => {
                        batch.push(record);
                        pos += 1;
                        if batch.len() >= batch_cap {
                            if !flush_batch(
                                shared,
                                &mut batch,
                                batch_cap,
                                &mut cursor,
                                resume_from,
                                started,
                                config.rate_limit,
                            ) {
                                return;
                            }
                            if pos > best {
                                best = pos;
                                failures = 0;
                            }
                        }
                    }
                    Some(Err(_)) => failed_session = true,
                    None => {
                        if !flush_batch(
                            shared,
                            &mut batch,
                            batch_cap,
                            &mut cursor,
                            resume_from,
                            started,
                            config.rate_limit,
                        ) {
                            return;
                        }
                        shared.finish(FeedEnd::Eof);
                        return;
                    }
                }
            }
            // Records read before the failure were delivered by the
            // stream; hand them over so the reconnect skip-count stays
            // exact and nothing is re-read.
            if !flush_batch(
                shared,
                &mut batch,
                batch_cap,
                &mut cursor,
                resume_from,
                started,
                config.rate_limit,
            ) {
                return;
            }
            if pos > best {
                best = pos;
                failures = 0;
            }
        }
        shared.add_drop();
        failures += 1;
        if failures > config.max_reconnects {
            shared.finish(FeedEnd::Dead);
            return;
        }
        shared.add_reconnect();
    }
}

/// Length of the emittable run: the prefix of `slice` (the winning
/// feed `index`'s head batch) ordered strictly before the strongest
/// competing head `(cts, cidx)` in the `(timestamp, source index)`
/// total order. Galloping search: runs are often short when feeds
/// interleave tightly, but can span the whole batch when time ranges
/// are disjoint, so probe exponentially and binary-search the final
/// interval — O(log run), not O(log batch).
fn run_len(slice: &[PacketRecord], index: usize, cts: Timestamp, cidx: usize) -> usize {
    let wins = |r: &PacketRecord| r.ts < cts || (r.ts == cts && index < cidx);
    debug_assert!(wins(&slice[0]), "the popped heap winner must win");
    let n = slice.len();
    let mut bound = 1usize;
    while bound < n && wins(&slice[bound]) {
        bound *= 2;
    }
    let lo = bound / 2 + 1;
    let hi = bound.min(n);
    lo + slice[lo..hi].partition_point(wins)
}

/// N concurrent sources merged into one deterministic record stream.
///
/// Construction spawns one producer thread per source; dropping the set
/// releases and joins them. The set itself implements [`StreamSource`],
/// so it plugs into anything a single source feeds — notably the live
/// engine, which consumes it via `pull_chunk` unchanged (and gets whole
/// runs per heap adjustment, not single records).
#[derive(Debug)]
pub struct SourceSet {
    feeds: Vec<Arc<FeedShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// The head batch pulled from each feed but not yet emitted; the
    /// iterator's next element is the feed's merge head.
    heads: Vec<std::vec::IntoIter<PacketRecord>>,
    /// Min-heap over `(head timestamp, source index)`.
    heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    delivered: Vec<u64>,
    labels: Vec<String>,
    primed: bool,
}

impl SourceSet {
    /// Spawns a set reading every source from its beginning.
    pub fn spawn(factories: Vec<Box<dyn SourceFactory>>, config: &SourceSetConfig) -> SourceSet {
        let cursors = vec![0; factories.len()];
        SourceSet::resume(factories, config, &cursors)
    }

    /// Spawns a set resuming each source past its checkpoint cursor
    /// (records already consumed in a previous run are skipped, not
    /// re-delivered).
    ///
    /// # Panics
    /// When `factories` and `cursors` disagree in length.
    pub fn resume(
        factories: Vec<Box<dyn SourceFactory>>,
        config: &SourceSetConfig,
        cursors: &[u64],
    ) -> SourceSet {
        assert_eq!(
            factories.len(),
            cursors.len(),
            "one resume cursor per source"
        );
        let n = factories.len();
        let mut feeds = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for (index, factory) in factories.into_iter().enumerate() {
            labels.push(factory.label());
            let shared = Arc::new(FeedShared::new(config.queue_capacity));
            let producer = ProducerConfig {
                batch_records: config.batch_records.max(1),
                rate_limit: config.rate_limit,
                max_reconnects: config.max_reconnects,
            };
            let feed = Arc::clone(&shared);
            let resume_from = cursors[index];
            handles.push(
                std::thread::Builder::new()
                    .name(format!("qs-source-{index}"))
                    .spawn(move || run_producer(factory, &feed, resume_from, producer))
                    .expect("spawn source producer"),
            );
            feeds.push(shared);
        }
        SourceSet {
            feeds,
            handles,
            heads: (0..n).map(|_| Vec::new().into_iter()).collect(),
            heap: BinaryHeap::with_capacity(n),
            delivered: cursors.to_vec(),
            labels,
            primed: false,
        }
    }

    /// Per-source vantage labels, captured from the factories at spawn
    /// time (one per feed, index-aligned with [`SourceSet::stats`]).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Blocks for feed `index`'s next head batch (or its termination)
    /// and re-enters it into the heap.
    fn refill(&mut self, index: usize) {
        if let Some(batch) = self.feeds[index].pop_batch() {
            let iter = batch.into_iter();
            let ts = iter.as_slice()[0].ts;
            self.heads[index] = iter;
            self.heap.push(Reverse((ts, index)));
        }
    }

    /// Waits for the first head batch of every feed (or its
    /// termination) so the merge starts watermark-complete.
    fn prime(&mut self) {
        if self.primed {
            return;
        }
        self.primed = true;
        for index in 0..self.feeds.len() {
            self.refill(index);
        }
    }

    /// Emits up to `max` records into `out` in merged event-time
    /// order, one *run* per heap adjustment: the winning feed's whole
    /// emittable prefix moves in one go. Blocks until every live
    /// source has a head to compare; stops early only when all sources
    /// are exhausted.
    fn merge_into(&mut self, out: &mut Vec<PacketRecord>, max: usize) {
        self.prime();
        while out.len() < max {
            let Some(Reverse((_, index))) = self.heap.pop() else {
                return;
            };
            let competitor = self.heap.peek().map(|&Reverse(pair)| pair);
            let head = &mut self.heads[index];
            let slice = head.as_slice();
            let run = match competitor {
                None => slice.len(),
                Some((cts, cidx)) => run_len(slice, index, cts, cidx),
            };
            let take = run.min(max - out.len());
            out.extend(head.by_ref().take(take));
            self.delivered[index] += take as u64;
            if self.heads[index].as_slice().is_empty() {
                self.refill(index);
            } else {
                let ts = self.heads[index].as_slice()[0].ts;
                self.heap.push(Reverse((ts, index)));
            }
        }
    }

    /// Pulls the next record in merged event-time order, blocking until
    /// every live source has a head to compare. `None` once all sources
    /// are exhausted.
    pub fn next_merged(&mut self) -> Option<PacketRecord> {
        self.prime();
        let Reverse((_, index)) = self.heap.pop()?;
        let record = self.heads[index].next().expect("heap entry has a head");
        self.delivered[index] += 1;
        if self.heads[index].as_slice().is_empty() {
            self.refill(index);
        } else {
            let ts = self.heads[index].as_slice()[0].ts;
            self.heap.push(Reverse((ts, index)));
        }
        Some(record)
    }

    /// Per-source resume cursors (absolute records delivered), the
    /// payload of a schema-v2 checkpoint. Records still buffered in a
    /// head batch are *not* counted — only what the consumer actually
    /// pulled — so a checkpoint taken mid-batch restores exactly.
    pub fn cursors(&self) -> Vec<u64> {
        self.delivered.clone()
    }

    /// Total records delivered across all sources — equals the records
    /// the consumer has pulled from the merge.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Number of sources in the set.
    pub fn len(&self) -> usize {
        self.feeds.len()
    }

    /// Whether the set has no sources at all.
    pub fn is_empty(&self) -> bool {
        self.feeds.is_empty()
    }

    /// Point-in-time per-source telemetry.
    pub fn stats(&self) -> Vec<SourceStats> {
        self.feeds
            .iter()
            .enumerate()
            .map(|(index, feed)| {
                let mut stats = feed.stats();
                stats.delivered = self.delivered[index];
                // A held head batch left the queue but was not fully
                // emitted yet; count the remainder as buffered so
                // records are conserved.
                stats.queue_depth += self.heads[index].as_slice().len();
                stats
            })
            .collect()
    }
}

impl StreamSource for SourceSet {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        // Source errors are handled inside the producers (reconnect or
        // abandon), so the merged stream itself never yields `Err`.
        self.next_merged().map(Ok)
    }

    fn pull_chunk(&mut self, max: usize) -> Result<Vec<PacketRecord>, CaptureError> {
        // Run-at-a-time emission instead of the default per-record
        // loop: this is the fast path the live engine pumps.
        let mut chunk = Vec::with_capacity(max.min(DEFAULT_BATCH * 4));
        self.merge_into(&mut chunk, max);
        Ok(chunk)
    }
}

impl Drop for SourceSet {
    fn drop(&mut self) {
        for feed in &self.feeds {
            feed.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The synchronous reference merge: the exact `(timestamp, source
/// index)` min-heap [`SourceSet`] runs, stated as a pure function. The
/// multi-source contract is that a `SourceSet` over `sources` delivers
/// precisely this sequence, whatever its batch boundaries.
pub fn merge_records(sources: &[Vec<PacketRecord>]) -> Vec<PacketRecord> {
    let mut cursors = vec![0usize; sources.len()];
    let mut heap: BinaryHeap<Reverse<(Timestamp, usize)>> = sources
        .iter()
        .enumerate()
        .filter_map(|(index, records)| records.first().map(|r| Reverse((r.ts, index))))
        .collect();
    let mut merged = Vec::with_capacity(sources.iter().map(Vec::len).sum());
    while let Some(Reverse((_, index))) = heap.pop() {
        let record = sources[index][cursors[index]].clone();
        cursors[index] += 1;
        if let Some(next) = sources[index].get(cursors[index]) {
            heap.push(Reverse((next.ts, index)));
        }
        merged.push(record);
    }
    merged
}

/// A factory replaying an in-memory record vector (each open clones the
/// backing records, so reconnect-with-resume replays from the start).
/// Labelled `memory`.
#[derive(Debug, Clone)]
pub struct MemoryFactory {
    records: Vec<PacketRecord>,
}

impl SourceFactory for MemoryFactory {
    fn open(&mut self) -> Result<DynSource, CaptureError> {
        Ok(Box::new(MemoryStream::new(self.records.clone())) as DynSource)
    }

    fn label(&self) -> String {
        "memory".to_string()
    }
}

/// Builds a [`MemoryFactory`] over `records`.
pub fn memory_factory(records: Vec<PacketRecord>) -> MemoryFactory {
    MemoryFactory { records }
}

/// A factory reading a `.qscp` capture file through the zero-copy
/// batched decoder. Labelled with the capture path.
///
/// A zero-byte file is treated as an instantly-EOF feed rather than a
/// truncated capture: a vantage point that recorded nothing must drain
/// cleanly inside a multi-source set instead of aborting the run.
#[derive(Debug, Clone)]
pub struct CaptureFileFactory {
    path: PathBuf,
}

impl SourceFactory for CaptureFileFactory {
    fn open(&mut self) -> Result<DynSource, CaptureError> {
        let data = std::fs::read(&self.path)?;
        if data.is_empty() {
            return Ok(Box::new(MemoryStream::new(Vec::new())) as DynSource);
        }
        Ok(Box::new(crate::zerocopy::ZeroCopyCaptureReader::from_bytes(data)?) as DynSource)
    }

    fn label(&self) -> String {
        self.path.display().to_string()
    }
}

/// Builds a [`CaptureFileFactory`] over the capture at `path`.
pub fn capture_file_factory(path: impl Into<PathBuf>) -> CaptureFileFactory {
    CaptureFileFactory { path: path.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TcpFlags;
    use std::net::Ipv4Addr;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn record(ts: u64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_micros(ts),
            Ipv4Addr::new(10, 0, (ts >> 8) as u8, ts as u8),
            Ipv4Addr::new(192, 0, 2, 1),
            443,
            5000,
            TcpFlags::SYN_ACK,
        )
    }

    fn boxed(factory: impl SourceFactory + 'static) -> Box<dyn SourceFactory> {
        Box::new(factory)
    }

    fn drain(set: &mut SourceSet) -> Vec<PacketRecord> {
        let mut out = Vec::new();
        while let Some(r) = set.next_merged() {
            out.push(r);
        }
        out
    }

    #[test]
    fn merges_in_event_time_order() {
        let a: Vec<_> = [1, 4, 7, 10].iter().map(|&t| record(t)).collect();
        let b: Vec<_> = [2, 3, 8].iter().map(|&t| record(t)).collect();
        let c: Vec<_> = [5, 6, 9].iter().map(|&t| record(t)).collect();
        let splits = vec![a, b, c];
        let reference = merge_records(&splits);
        let mut ts: Vec<u64> = reference.iter().map(|r| r.ts.0).collect();
        ts.sort_unstable();
        assert_eq!(ts, (1..=10).collect::<Vec<_>>());

        let factories = splits
            .iter()
            .map(|s| boxed(memory_factory(s.clone())))
            .collect();
        let mut set = SourceSet::spawn(factories, &SourceSetConfig::default());
        assert_eq!(set.len(), 3);
        assert_eq!(drain(&mut set), reference);
        assert_eq!(set.cursors(), vec![4, 3, 3]);
        let stats = set.stats();
        assert!(stats.iter().all(|s| s.eof && !s.dead));
        assert_eq!(stats.iter().map(|s| s.produced).sum::<u64>(), 10);
        // Each feed fits in one batch at the default target.
        assert!(stats.iter().all(|s| s.batches == 1), "{stats:?}");
    }

    #[test]
    fn equal_timestamps_break_ties_by_source_index() {
        let a: Vec<_> = [5, 5].iter().map(|&t| record(t)).collect();
        let b: Vec<_> = [5].iter().map(|&t| record(t)).collect();
        let merged = merge_records(&[a.clone(), b.clone()]);
        // Source 0 wins ties while it has a head, then source 1.
        assert_eq!(merged, vec![a[0].clone(), a[1].clone(), b[0].clone()]);
    }

    #[test]
    fn run_cutoff_respects_the_tie_rule() {
        let slice: Vec<_> = [1, 2, 3, 3, 4].iter().map(|&t| record(t)).collect();
        // Competitor at ts=3: a lower-indexed winner emits through its
        // own ts=3 records; a higher-indexed winner stops before them.
        assert_eq!(run_len(&slice, 0, Timestamp::from_micros(3), 1), 4);
        assert_eq!(run_len(&slice, 2, Timestamp::from_micros(3), 1), 2);
        // Competitor far in the future: the whole batch is one run.
        assert_eq!(run_len(&slice, 2, Timestamp::from_micros(99), 1), 5);
    }

    #[test]
    fn batch_boundaries_never_change_the_merge() {
        let a: Vec<_> = (0..200).map(|t| record(t * 3)).collect();
        let b: Vec<_> = (0..200).map(|t| record(t * 3 + 1)).collect();
        let splits = vec![a, b];
        let reference = merge_records(&splits);
        for batch_records in [1usize, 2, 7, 4096] {
            let factories = splits
                .iter()
                .map(|s| boxed(memory_factory(s.clone())))
                .collect();
            let config = SourceSetConfig {
                batch_records,
                ..SourceSetConfig::default()
            };
            let mut set = SourceSet::spawn(factories, &config);
            assert_eq!(drain(&mut set), reference, "batch={batch_records}");
        }
    }

    #[test]
    fn tiny_queue_bounds_peak_depth() {
        let records: Vec<_> = (0..500).map(record).collect();
        let factories = vec![boxed(memory_factory(records))];
        let config = SourceSetConfig {
            queue_capacity: 3,
            ..SourceSetConfig::default()
        };
        let mut set = SourceSet::spawn(factories, &config);
        assert_eq!(drain(&mut set).len(), 500);
        let stats = &set.stats()[0];
        assert!(stats.queue_peak <= 3, "peak {}", stats.queue_peak);
        assert_eq!(stats.delivered, 500);
    }

    #[test]
    fn empty_source_is_drained_not_fatal() {
        let records: Vec<_> = (0..20).map(record).collect();
        let factories = vec![
            boxed(memory_factory(records.clone())),
            boxed(memory_factory(Vec::new())),
        ];
        let mut set = SourceSet::spawn(factories, &SourceSetConfig::default());
        assert_eq!(drain(&mut set), records);
        let stats = set.stats();
        assert!(stats[1].eof);
        assert_eq!(stats[1].delivered, 0);
        assert_eq!(stats[1].batches, 0);
    }

    #[test]
    fn failed_opens_retry_then_succeed() {
        let records: Vec<_> = (0..10).map(record).collect();
        let attempts = Arc::new(AtomicU32::new(0));
        let counter = Arc::clone(&attempts);
        let backing = records.clone();
        let flaky = move || -> Result<DynSource, CaptureError> {
            if counter.fetch_add(1, Ordering::SeqCst) < 2 {
                return Err(CaptureError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "not up yet",
                )));
            }
            Ok(Box::new(MemoryStream::new(backing.clone())) as DynSource)
        };
        let mut set = SourceSet::spawn(vec![boxed(flaky)], &SourceSetConfig::default());
        assert_eq!(drain(&mut set), records);
        let stats = &set.stats()[0];
        assert_eq!(stats.reconnects, 2);
        assert_eq!(stats.drops, 2);
        assert!(stats.eof && !stats.dead);
    }

    #[test]
    fn forever_failing_source_is_abandoned_and_set_continues() {
        let records: Vec<_> = (0..10).map(record).collect();
        let always_down = move || -> Result<DynSource, CaptureError> {
            Err(CaptureError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "permanently down",
            )))
        };
        let config = SourceSetConfig {
            max_reconnects: 2,
            ..SourceSetConfig::default()
        };
        let factories = vec![boxed(memory_factory(records.clone())), boxed(always_down)];
        let mut set = SourceSet::spawn(factories, &config);
        assert_eq!(drain(&mut set), records);
        let stats = set.stats();
        assert!(stats[1].dead, "{stats:?}");
        assert_eq!(stats[1].reconnects, 2);
        assert_eq!(stats[1].drops, 3);
    }

    #[test]
    fn resume_skips_already_delivered_records() {
        let records: Vec<_> = (0..30).map(record).collect();
        let factories = vec![boxed(memory_factory(records.clone()))];
        let mut set = SourceSet::resume(factories, &SourceSetConfig::default(), &[12]);
        assert_eq!(drain(&mut set), records[12..].to_vec());
        assert_eq!(set.cursors(), vec![30]);
    }

    #[test]
    fn resume_past_the_end_is_clean_eof() {
        let records: Vec<_> = (0..5).map(record).collect();
        let factories = vec![boxed(memory_factory(records))];
        let mut set = SourceSet::resume(factories, &SourceSetConfig::default(), &[99]);
        assert!(set.next_merged().is_none());
        assert!(set.stats()[0].eof);
    }

    #[test]
    fn cursors_exclude_records_held_in_the_head_batch() {
        // Pull a prefix that ends mid-batch: the cursor must count only
        // the emitted records, and the held remainder must show up as
        // buffered depth — the invariant v2 checkpoints rest on.
        let records: Vec<_> = (0..100).map(record).collect();
        let factories = vec![boxed(memory_factory(records.clone()))];
        let mut set = SourceSet::spawn(factories, &SourceSetConfig::default());
        let chunk = set.pull_chunk(37).unwrap();
        assert_eq!(chunk, records[..37].to_vec());
        assert_eq!(set.cursors(), vec![37]);
        let stats = &set.stats()[0];
        assert_eq!(stats.delivered, 37);
        assert_eq!(stats.queue_depth, 63, "held remainder stays buffered");
    }

    #[test]
    fn dropping_a_set_mid_stream_releases_producers() {
        let records: Vec<_> = (0..10_000).map(record).collect();
        let factories = vec![
            boxed(memory_factory(records.clone())),
            boxed(memory_factory(records)),
        ];
        let config = SourceSetConfig {
            queue_capacity: 8,
            ..SourceSetConfig::default()
        };
        let mut set = SourceSet::spawn(factories, &config);
        for _ in 0..50 {
            set.next_merged().unwrap();
        }
        drop(set); // must not hang on the blocked producers
    }

    #[test]
    fn rate_limit_paces_without_changing_the_merge() {
        let records: Vec<_> = (0..40).map(record).collect();
        let splits = vec![
            records.iter().step_by(2).cloned().collect::<Vec<_>>(),
            records.iter().skip(1).step_by(2).cloned().collect(),
        ];
        let reference = merge_records(&splits);
        let factories = splits
            .iter()
            .map(|s| boxed(memory_factory(s.clone())))
            .collect();
        let config = SourceSetConfig {
            rate_limit: Some(2_000),
            ..SourceSetConfig::default()
        };
        let mut set = SourceSet::spawn(factories, &config);
        assert_eq!(drain(&mut set), reference);
    }

    #[test]
    fn source_set_is_a_stream_source() {
        let records: Vec<_> = (0..25).map(record).collect();
        let factories = vec![boxed(memory_factory(records.clone()))];
        let mut set = SourceSet::spawn(factories, &SourceSetConfig::default());
        let chunk = set.pull_chunk(7).unwrap();
        assert_eq!(chunk, records[..7].to_vec());
    }

    #[test]
    fn labels_are_captured_per_feed_at_spawn() {
        let records: Vec<_> = (0..5).map(record).collect();
        let path = std::path::PathBuf::from("/tmp/vantage-a.qscp");
        let factories: Vec<Box<dyn SourceFactory>> = vec![
            boxed(memory_factory(records)),
            boxed(capture_file_factory(&path)),
            boxed(|| -> Result<DynSource, CaptureError> {
                Ok(Box::new(MemoryStream::new(Vec::new())) as DynSource)
            }),
        ];
        let set = SourceSet::spawn(factories, &SourceSetConfig::default());
        assert_eq!(
            set.labels(),
            [
                "memory".to_string(),
                path.display().to_string(),
                "unnamed".to_string()
            ]
        );
    }

    #[test]
    fn capture_file_factory_treats_empty_file_as_eof() {
        let path = std::env::temp_dir().join(format!(
            "qs-multi-empty-{}-{:?}.qscp",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, b"").unwrap();
        let mut factory = capture_file_factory(&path);
        let mut source = factory.open().expect("empty capture tolerated");
        assert!(source.next_record().is_none());
        std::fs::remove_file(&path).ok();
    }
}
