//! # quicsand-net
//!
//! Deterministic network-simulation substrate for the QUICsand
//! reproduction.
//!
//! The paper's measurement apparatus is a passive /9 telescope plus a
//! local testbed. Both are reproduced on top of this crate:
//!
//! * [`time`] — microsecond timestamps and a virtual clock; every
//!   simulation is fully deterministic and wall-clock independent.
//! * [`ip`] — IPv4 prefixes, subnet arithmetic and address sampling
//!   (the `/9` telescope covers 1/512 of the address space; spoofed
//!   floods land in it with exactly that probability).
//! * [`record`] — layer-3/4 packet records, the unit the telescope
//!   stores and the analyses consume (pcap stand-in).
//! * [`capture`] — a length-prefixed binary capture format with
//!   streaming reader/writer, so scenarios can be persisted and replayed.
//! * [`event`] — a discrete-event scheduler (binary heap of timed
//!   events) used by the server model.
//! * [`link`] — a rate-limited, lossy link model for the Table 1
//!   testbed (client ↔ server over "Gigabit Ethernet").
//! * [`l3`] — IPv4/UDP/TCP/ICMP header serialization with checksums,
//!   so records can be lowered to real wire bytes.
//! * [`pcap`] — classic libpcap export/import (LINKTYPE_RAW), opening
//!   every capture in Wireshark — the paper's §4.1 dissection tool.
//! * [`rng`] — seed-splitting helpers so every subsystem gets an
//!   independent, reproducible ChaCha stream.
//! * [`stream`] — pull-based [`stream::StreamSource`] adapters that
//!   feed the live detection engine from a capture replay or an
//!   in-memory scenario.
//! * [`zerocopy`] — arena-backed batched capture decoding: records
//!   decoded against one file-sized buffer through a checked cursor,
//!   UDP payloads handed out as zero-copy views (the ingest hot path).
//! * [`multi`] — N concurrent sources behind bounded backpressure
//!   queues, merged into one deterministic watermark-aligned stream
//!   ([`multi::SourceSet`]) with reconnect-with-resume on failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod event;
pub mod ip;
pub mod l3;
pub mod link;
pub mod multi;
pub mod pcap;
pub mod record;
pub mod rng;
pub mod stream;
pub mod time;
pub mod zerocopy;

pub use ip::Ipv4Prefix;
pub use multi::{
    capture_file_factory, memory_factory, merge_records, DynSource, SourceFactory, SourceSet,
    SourceSetConfig, SourceStats,
};
pub use record::{IcmpKind, PacketRecord, TcpFlags, Transport};
pub use stream::{MemoryStream, StreamSource};
pub use time::{Duration, Timestamp};
pub use zerocopy::{DecoderBuffer, RecordBatch, ZeroCopyCaptureReader};
