//! Virtual time: microsecond-resolution timestamps and durations.
//!
//! All simulations run on virtual time so results are deterministic and
//! a 30-day telescope month takes milliseconds to "elapse". The paper's
//! thresholds are second-granular (session timeout 5 min, DoS duration
//! 60 s, 1-minute pps slots); microseconds leave ample headroom for the
//! server model's per-handshake crypto costs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds since the simulation epoch.
///
/// The epoch is scenario-defined; the paper's scenario uses
/// 2021-04-01T00:00:00 UTC as time zero.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

impl Timestamp {
    /// The simulation epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Builds a timestamp from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Whole seconds since the epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The hour bucket this timestamp falls into (hours since epoch) —
    /// the binning used by Figs. 2 and 3.
    pub fn hour_bucket(self) -> u64 {
        self.as_secs() / SECS_PER_HOUR
    }

    /// The minute bucket (minutes since epoch) — used for the max-pps
    /// computation over 1-minute slots (§5.2).
    pub fn minute_bucket(self) -> u64 {
        self.as_secs() / 60
    }

    /// Hour of day (0–23) assuming the epoch is midnight UTC — used for
    /// the diurnal analysis (Fig. 3 insert).
    pub fn hour_of_day(self) -> u64 {
        (self.as_secs() / SECS_PER_HOUR) % 24
    }

    /// Day index since the epoch.
    pub fn day(self) -> u64 {
        self.as_secs() / SECS_PER_DAY
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition.
    pub fn checked_add(self, d: Duration) -> Option<Timestamp> {
        self.0.checked_add(d.0).map(Timestamp)
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// From whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Duration(mins * 60 * MICROS_PER_SEC)
    }

    /// From microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// From milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// From fractional seconds (clamped at zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration((secs.max(0.0) * MICROS_PER_SEC as f64) as u64)
    }

    /// Whole seconds (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Multiplies by a scalar, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs();
        let micros = self.0 % MICROS_PER_SEC;
        let (d, rem) = (secs / SECS_PER_DAY, secs % SECS_PER_DAY);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}.{micros:06}")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < MICROS_PER_SEC {
            write!(f, "{:.1}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            now: Timestamp::EPOCH,
        }
    }

    /// Creates a clock at a specific time.
    pub fn starting_at(now: Timestamp) -> Self {
        SimClock { now }
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Advances the clock *to* `t`; ignores attempts to move backwards
    /// (the clock is monotonic).
    pub fn advance_to(&mut self, t: Timestamp) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_conversions() {
        let t = Timestamp::from_secs(90);
        assert_eq!(t.as_micros(), 90_000_000);
        assert_eq!(t.as_secs(), 90);
        assert_eq!(Timestamp::from_micros(1_500_000).as_secs(), 1);
        assert!((Timestamp::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn buckets() {
        let t = Timestamp::from_secs(2 * SECS_PER_HOUR + 125);
        assert_eq!(t.hour_bucket(), 2);
        assert_eq!(t.minute_bucket(), 122);
        assert_eq!(t.hour_of_day(), 2);
        assert_eq!(t.day(), 0);
        let next_day = Timestamp::from_secs(SECS_PER_DAY + 6 * SECS_PER_HOUR);
        assert_eq!(next_day.hour_of_day(), 6);
        assert_eq!(next_day.day(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        let t2 = t + Duration::from_secs(5);
        assert_eq!(t2.as_secs(), 15);
        assert_eq!((t2 - t).as_secs(), 5);
        assert_eq!(t2.saturating_since(t), Duration::from_secs(5));
        assert_eq!(t.saturating_since(t2), Duration::ZERO);
        let mut t3 = t;
        t3 += Duration::from_millis(1_500);
        assert_eq!(t3.as_micros(), 11_500_000);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_mins(5).as_secs(), 300);
        assert_eq!(Duration::from_millis(2).as_micros(), 2_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs(2).saturating_mul(3).as_secs(), 6);
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_micros(10).to_string(), "10us");
        assert_eq!(Duration::from_millis(2).to_string(), "2.0ms");
        assert_eq!(Duration::from_secs(255).to_string(), "255.000s");
        let t = Timestamp::from_secs(SECS_PER_DAY + 6 * 3600 + 61);
        assert_eq!(t.to_string(), "d1+06:01:01.000000");
    }

    #[test]
    fn clock_is_monotonic() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Timestamp::EPOCH);
        clock.advance(Duration::from_secs(5));
        assert_eq!(clock.now().as_secs(), 5);
        clock.advance_to(Timestamp::from_secs(3)); // backwards: ignored
        assert_eq!(clock.now().as_secs(), 5);
        clock.advance_to(Timestamp::from_secs(8));
        assert_eq!(clock.now().as_secs(), 8);
        let c2 = SimClock::starting_at(Timestamp::from_secs(100));
        assert_eq!(c2.now().as_secs(), 100);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(Timestamp(u64::MAX).checked_add(Duration(1)).is_none());
        assert_eq!(Timestamp(5).checked_add(Duration(5)), Some(Timestamp(10)));
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(base in 0u64..u32::MAX as u64, delta in 0u64..u32::MAX as u64) {
            let t = Timestamp(base);
            let d = Duration(delta);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn prop_hour_bucket_consistent(secs in 0u64..10_000_000) {
            let t = Timestamp::from_secs(secs);
            prop_assert_eq!(t.hour_bucket(), secs / 3600);
            prop_assert_eq!(t.hour_of_day(), (secs / 3600) % 24);
        }
    }
}
