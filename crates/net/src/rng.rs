//! Deterministic randomness: seed splitting and distribution helpers.
//!
//! Every generator in the reproduction consumes an independent ChaCha
//! stream derived from the scenario's master seed, so adding a subsystem
//! never perturbs the draws of another — scenarios stay byte-identical
//! across versions unless a subsystem itself changes.
//!
//! `rand`'s `StdRng` explicitly does not promise cross-version stream
//! stability; `ChaCha12Rng` does, which is why it is used throughout
//! (see DESIGN.md §6).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Derives an independent, named RNG stream from a master seed.
///
/// The stream is keyed by FNV-1a over the label, so renaming a subsystem
/// changes its draws but nothing else's.
pub fn substream(master_seed: u64, label: &str) -> ChaCha12Rng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(master_seed ^ hash)
}

/// Samples an exponential inter-arrival time with the given mean
/// (Poisson process), in fractional units of the mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // Inverse CDF; clamp the uniform away from 0 to avoid inf.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a log-normal variate parameterized by its *median* and the
/// shape `sigma` (the paper reports medians for flood durations, which
/// makes the median the natural parameter: `median = e^mu`).
pub fn lognormal_by_median<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    let z = standard_normal(rng);
    median * (sigma * z).exp()
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an index from a discrete distribution given by non-negative
/// weights. Panics if all weights are zero or the slice is empty (a
/// configuration error).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && !weights.is_empty(),
        "weighted_index needs positive total weight"
    );
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Samples from a Zipf-like distribution over `n` items with exponent
/// `s` (used for heavy-tailed victim popularity, Fig. 6).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    assert!(n > 0, "zipf needs at least one item");
    // Direct inverse-CDF over the normalized harmonic weights; n is at
    // most a few thousand in our scenarios so O(n) is fine.
    let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let mut target = rng.gen_range(0.0..norm);
    for k in 1..=n {
        let w = 1.0 / (k as f64).powf(s);
        if target < w {
            return k - 1;
        }
        target -= w;
    }
    n - 1
}

/// Samples a binomial(n, p) count — how many of `n` spoofed packets land
/// inside a telescope covering share `p` of the address space. Uses a
/// normal approximation above a size threshold for month-scale n.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n > 1000 && mean > 30.0 {
        // Normal approximation with continuity clamp.
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let sample = mean + sd * standard_normal(rng);
        return sample.round().clamp(0.0, n as f64) as u64;
    }
    (0..n).filter(|_| rng.gen_bool(p)).count() as u64
}

/// Samples a Poisson(lambda) count via Knuth's method (fine for the
/// per-second event rates of this project, lambda ≲ 50); falls back to
/// a normal approximation for large lambda.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        let sample = lambda + lambda.sqrt() * standard_normal(rng);
        return sample.round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let mut a1 = substream(1, "scanners");
        let mut a2 = substream(1, "scanners");
        let mut b = substream(1, "floods");
        let draws1: Vec<u64> = (0..10).map(|_| a1.gen()).collect();
        let draws2: Vec<u64> = (0..10).map(|_| a2.gen()).collect();
        let draws3: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(draws1, draws2, "same label, same stream");
        assert_ne!(draws1, draws3, "different label, different stream");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut r = rng();
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn lognormal_median_converges() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| lognormal_by_median(&mut r, 255.0, 1.2))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median / 255.0 - 1.0).abs() < 0.15,
            "median={median}, expected ~255"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [0.58, 0.25, 0.17]; // the Fig. 9 provider mix
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        let share0 = counts[0] as f64 / 30_000.0;
        assert!((share0 - 0.58).abs() < 0.02, "share0={share0}");
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn weighted_index_rejects_zero_weights() {
        let mut r = rng();
        weighted_index(&mut r, &[0.0, 0.0]);
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf(&mut r, 100, 1.2)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[70]);
        // Rank 1 should dominate clearly.
        assert!(counts[0] as f64 / 50_000.0 > 0.15);
    }

    #[test]
    fn binomial_small_and_large_paths_agree_in_mean() {
        let mut r = rng();
        // Small path.
        let small: u64 = (0..200).map(|_| binomial(&mut r, 500, 0.1)).sum();
        let small_mean = small as f64 / 200.0;
        assert!((small_mean - 50.0).abs() < 3.0, "small_mean={small_mean}");
        // Large path (normal approximation).
        let large: u64 = (0..200)
            .map(|_| binomial(&mut r, 512_000, 1.0 / 512.0))
            .sum();
        let large_mean = large as f64 / 200.0;
        assert!(
            (large_mean - 1000.0).abs() < 20.0,
            "large_mean={large_mean}"
        );
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = rng();
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut r, 2.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean={mean}");
        // Large-lambda path.
        let sum: u64 = (0..2_000).map(|_| poisson(&mut r, 80.0)).sum();
        let mean = sum as f64 / 2_000.0;
        assert!((mean - 80.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn poisson_edges() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn binomial_edges() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
    }
}
