//! Zero-copy batched capture decoding.
//!
//! [`crate::capture::CaptureReader`] is a streaming reader over any
//! `Read`: it allocates a fresh `Vec` for every UDP payload and copies
//! each record's bytes out of the IO buffer. That is the right shape for
//! unbounded pipes, but for capture *files* — the dominant case, replayed
//! many times per generation — the whole file fits in memory and the
//! per-record copies are pure overhead.
//!
//! This module decodes records against a single immutable arena instead:
//!
//! * the file is read **once** into one [`Bytes`] allocation (the arena);
//! * [`DecoderBuffer`] is a typed cursor over that arena — every read is
//!   bounds-checked and returns [`CaptureError::Truncated`] instead of
//!   panicking, in the style of s2n-codec's checked splits;
//! * UDP payloads are handed out as [`Bytes::slice`] windows into the
//!   arena (reference-count bump + offset pair, no copy, no allocation);
//! * [`ZeroCopyCaptureReader::read_batch`] drains records in batches so
//!   downstream sharding can amortize per-record hand-off.
//!
//! The crate is `#![forbid(unsafe_code)]`, so the arena is a plain
//! read-to-end rather than an `mmap` (see DESIGN.md §10 for the safety
//! argument); the decoding discipline is identical to what a mapped
//! buffer would use.
//!
//! ## Truncation contract (shared with `CaptureReader`)
//!
//! * fewer than 8 header bytes → [`CaptureError::Truncated`];
//! * zero bytes remaining at a record boundary → clean end of stream;
//! * a record cut anywhere after its first byte — including inside the
//!   timestamp — → [`CaptureError::Truncated`].

use crate::capture::{
    decode_flags, decode_icmp, CaptureError, FORMAT_VERSION, MAGIC, MAX_UDP_PAYLOAD, TAG_ICMP,
    TAG_TCP, TAG_UDP,
};
use crate::record::{PacketRecord, Transport};
use crate::stream::StreamSource;
use crate::time::Timestamp;
use bytes::Bytes;
use std::io::Read;
use std::net::Ipv4Addr;
use std::path::Path;

/// Default number of records per [`ZeroCopyCaptureReader::read_batch`]
/// batch when callers have no better chunk size.
pub const DEFAULT_BATCH: usize = 4096;

/// A checked little-endian cursor over an immutable byte arena.
///
/// All reads advance the cursor; any read past the end returns
/// [`CaptureError::Truncated`] — never a panic. Slices split off the
/// buffer are zero-copy [`Bytes`] windows into the backing arena.
///
/// (The vendored `bytes::Buf` trait is *big*-endian and panics on
/// underflow, so the capture format's little-endian checked reads are
/// implemented here instead.)
#[derive(Debug, Clone)]
pub struct DecoderBuffer {
    arena: Bytes,
    offset: usize,
}

impl DecoderBuffer {
    /// Wraps an arena in a cursor positioned at its start.
    pub fn new(arena: Bytes) -> Self {
        DecoderBuffer { arena, offset: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.arena.len() - self.offset
    }

    /// Whether the cursor is at the end of the arena.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset from the start of the arena.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Borrows the next `len` bytes without advancing.
    fn peek(&self, len: usize) -> Result<&[u8], CaptureError> {
        self.arena
            .as_slice()
            .get(self.offset..self.offset + len)
            .ok_or(CaptureError::Truncated)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] at end of arena.
    pub fn read_u8(&mut self) -> Result<u8, CaptureError> {
        let b = self.peek(1)?[0];
        self.offset += 1;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] if fewer than 2 bytes remain.
    pub fn read_u16_le(&mut self) -> Result<u16, CaptureError> {
        let v = u16::from_le_bytes(self.peek(2)?.try_into().expect("2 bytes"));
        self.offset += 2;
        Ok(v)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] if fewer than 4 bytes remain.
    pub fn read_u32_le(&mut self) -> Result<u32, CaptureError> {
        let v = u32::from_le_bytes(self.peek(4)?.try_into().expect("4 bytes"));
        self.offset += 4;
        Ok(v)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] if fewer than 8 bytes remain.
    pub fn read_u64_le(&mut self) -> Result<u64, CaptureError> {
        let v = u64::from_le_bytes(self.peek(8)?.try_into().expect("8 bytes"));
        self.offset += 8;
        Ok(v)
    }

    /// Splits off the next `len` bytes as a zero-copy view of the arena.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] if fewer than `len` bytes remain.
    pub fn split_slice(&mut self, len: usize) -> Result<Bytes, CaptureError> {
        if self.remaining() < len {
            return Err(CaptureError::Truncated);
        }
        let slice = self.arena.slice(self.offset..self.offset + len);
        self.offset += len;
        Ok(slice)
    }
}

/// A batch of decoded records, ready for sharded hand-off.
///
/// Produced by [`ZeroCopyCaptureReader::read_batch`]; UDP payloads inside
/// the batch are views into the reader's arena, so the batch itself owns
/// no payload bytes.
#[derive(Debug, Default)]
pub struct RecordBatch {
    records: Vec<PacketRecord>,
}

impl RecordBatch {
    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records as a slice.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Consumes the batch, yielding its records.
    pub fn into_records(self) -> Vec<PacketRecord> {
        self.records
    }
}

/// Arena-backed capture decoder: the zero-copy counterpart of
/// [`crate::capture::CaptureReader`].
///
/// Decodes the same `QSCP` format with the same error taxonomy and the
/// same truncation contract, but UDP payloads are O(1) [`Bytes`] views
/// into a single file-sized arena instead of per-record heap copies.
pub struct ZeroCopyCaptureReader {
    buf: DecoderBuffer,
    records_read: u64,
}

impl ZeroCopyCaptureReader {
    /// Decodes the 8-byte file header and positions the cursor at the
    /// first record.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] for fewer than 8 header bytes,
    /// [`CaptureError::BadMagic`] / [`CaptureError::BadVersion`] for a
    /// corrupt header — the same taxonomy as `CaptureReader::new`.
    pub fn from_bytes(data: impl Into<Bytes>) -> Result<Self, CaptureError> {
        let mut buf = DecoderBuffer::new(data.into());
        let mut magic = [0u8; 4];
        magic.copy_from_slice(buf.peek(4)?);
        buf.offset += 4;
        if &magic != MAGIC {
            return Err(CaptureError::BadMagic);
        }
        let version = buf.read_u16_le()?;
        if version != FORMAT_VERSION {
            return Err(CaptureError::BadVersion(version));
        }
        buf.read_u16_le()?; // reserved
        Ok(ZeroCopyCaptureReader {
            buf,
            records_read: 0,
        })
    }

    /// Reads a capture file into a single arena and opens it.
    ///
    /// # Errors
    /// [`CaptureError::Io`] if the file cannot be read; header errors as
    /// in [`from_bytes`](Self::from_bytes).
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, CaptureError> {
        let file = std::fs::File::open(path)?;
        let mut data = Vec::new();
        if let Ok(meta) = file.metadata() {
            data.reserve_exact(meta.len() as usize);
        }
        let mut file = file;
        file.read_to_end(&mut data)?;
        Self::from_bytes(data)
    }

    /// Decodes the next record, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    /// [`CaptureError::Truncated`] for a record cut at any byte offset
    /// (including mid-timestamp); the other `CaptureError` variants for
    /// structurally invalid records.
    pub fn read_record(&mut self) -> Result<Option<PacketRecord>, CaptureError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        let ts = Timestamp::from_micros(self.buf.read_u64_le()?);
        let src = Ipv4Addr::from(self.buf.read_u32_le()?.to_be_bytes());
        let dst = Ipv4Addr::from(self.buf.read_u32_le()?.to_be_bytes());
        let tag = self.buf.read_u8()?;
        let transport = match tag {
            TAG_UDP => {
                let src_port = self.buf.read_u16_le()?;
                let dst_port = self.buf.read_u16_le()?;
                let len = self.buf.read_u32_le()?;
                if len as usize > MAX_UDP_PAYLOAD {
                    return Err(CaptureError::OversizedPayload(len));
                }
                Transport::Udp {
                    src_port,
                    dst_port,
                    payload: self.buf.split_slice(len as usize)?,
                }
            }
            TAG_TCP => {
                let src_port = self.buf.read_u16_le()?;
                let dst_port = self.buf.read_u16_le()?;
                let flags = decode_flags(self.buf.read_u8()?);
                Transport::Tcp {
                    src_port,
                    dst_port,
                    flags,
                }
            }
            TAG_ICMP => Transport::Icmp {
                kind: decode_icmp(self.buf.read_u8()?)?,
            },
            other => return Err(CaptureError::BadTag(other)),
        };
        self.records_read += 1;
        Ok(Some(PacketRecord {
            ts,
            src,
            dst,
            transport,
        }))
    }

    /// Decodes up to `max` records into a [`RecordBatch`].
    ///
    /// An empty batch signals a clean end of stream. A decode error after
    /// some records of the batch already decoded is reported immediately
    /// — the partial batch is discarded, matching the legacy reader's
    /// fail-on-first-error iteration.
    ///
    /// # Errors
    /// As [`read_record`](Self::read_record).
    pub fn read_batch(&mut self, max: usize) -> Result<RecordBatch, CaptureError> {
        let mut records = Vec::with_capacity(max.min(self.buf.remaining() / 17 + 1));
        while records.len() < max {
            match self.read_record()? {
                Some(record) => records.push(record),
                None => break,
            }
        }
        Ok(RecordBatch { records })
    }

    /// Decodes every remaining record.
    ///
    /// # Errors
    /// As [`read_record`](Self::read_record).
    pub fn read_to_end(&mut self) -> Result<Vec<PacketRecord>, CaptureError> {
        self.read_batch(usize::MAX).map(RecordBatch::into_records)
    }

    /// Number of records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Bytes not yet decoded.
    pub fn remaining_bytes(&self) -> usize {
        self.buf.remaining()
    }
}

impl Iterator for ZeroCopyCaptureReader {
    type Item = Result<PacketRecord, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

impl StreamSource for ZeroCopyCaptureReader {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        self.read_record().transpose()
    }

    fn pull_chunk(&mut self, max: usize) -> Result<Vec<PacketRecord>, CaptureError> {
        let mut chunk = Vec::with_capacity(max.min(self.buf.remaining() / 17 + 1));
        while chunk.len() < max {
            match self.read_record() {
                Ok(Some(record)) => chunk.push(record),
                Ok(None) => break,
                Err(error) if chunk.is_empty() => return Err(error),
                // Truncation does not consume the cursor past the cut,
                // so the error re-surfaces on the next (empty) pull —
                // the sticky-error contract `pull_chunk` documents.
                Err(_) => break,
            }
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{from_bytes, to_bytes, CaptureReader};
    use crate::record::{IcmpKind, TcpFlags};

    fn samples() -> Vec<PacketRecord> {
        vec![
            PacketRecord::udp(
                Timestamp::from_micros(123),
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(128, 0, 0, 1),
                40000,
                443,
                Bytes::from_static(b"\xc3payload"),
            ),
            PacketRecord::tcp(
                Timestamp::from_secs(60),
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(128, 5, 5, 5),
                443,
                55555,
                TcpFlags::SYN_ACK,
            ),
            PacketRecord::icmp(
                Timestamp::from_secs(61),
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(128, 6, 6, 6),
                IcmpKind::DestUnreachable,
            ),
            PacketRecord::udp(
                Timestamp::from_secs(62),
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(128, 7, 7, 7),
                443,
                1,
                Bytes::new(),
            ),
        ]
    }

    #[test]
    fn decodes_identically_to_the_legacy_reader() {
        let bytes = to_bytes(&samples()).unwrap();
        let legacy = from_bytes(&bytes).unwrap();
        let zero = ZeroCopyCaptureReader::from_bytes(bytes)
            .unwrap()
            .read_to_end()
            .unwrap();
        assert_eq!(legacy, zero);
        assert_eq!(zero, samples());
    }

    #[test]
    fn payloads_are_views_into_the_arena_not_copies() {
        let bytes = to_bytes(&samples()).unwrap();
        let before = bytes.clone();
        let mut reader = ZeroCopyCaptureReader::from_bytes(bytes).unwrap();
        let first = reader.read_record().unwrap().unwrap();
        let Transport::Udp { payload, .. } = &first.transport else {
            panic!("first sample is UDP");
        };
        // The payload window must alias the arena: same bytes, and the
        // arena outlives the reader through the payload's refcount.
        assert_eq!(payload.as_slice(), b"\xc3payload");
        drop(reader);
        // Header (8) + fixed record prefix (25) precede the payload.
        assert_eq!(payload.as_slice(), &before[33..41]);
    }

    #[test]
    fn batch_iteration_covers_everything_once() {
        let bytes = to_bytes(&samples()).unwrap();
        let mut reader = ZeroCopyCaptureReader::from_bytes(bytes).unwrap();
        let mut all = Vec::new();
        loop {
            let batch = reader.read_batch(3).unwrap();
            if batch.is_empty() {
                break;
            }
            all.extend(batch.into_records());
        }
        assert_eq!(all, samples());
        assert_eq!(reader.records_read(), 4);
        assert_eq!(reader.remaining_bytes(), 0);
    }

    #[test]
    fn header_taxonomy_matches_legacy() {
        // Short header → Truncated, bad magic → BadMagic, bad version →
        // BadVersion; identical to `CaptureReader::new`.
        for cut in 0..8 {
            let bytes = to_bytes(&[]).unwrap();
            let result = ZeroCopyCaptureReader::from_bytes(bytes[..cut].to_vec());
            assert!(
                matches!(result, Err(CaptureError::Truncated)),
                "header cut at {cut}"
            );
            assert!(matches!(
                CaptureReader::new(&bytes[..cut]),
                Err(CaptureError::Truncated)
            ));
        }
        let mut bad_magic = to_bytes(&[]).unwrap();
        bad_magic[0] = b'X';
        assert!(matches!(
            ZeroCopyCaptureReader::from_bytes(bad_magic),
            Err(CaptureError::BadMagic)
        ));
        let mut bad_version = to_bytes(&[]).unwrap();
        bad_version[4] = 99;
        assert!(matches!(
            ZeroCopyCaptureReader::from_bytes(bad_version),
            Err(CaptureError::BadVersion(99))
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(TAG_UDP);
        bytes.extend_from_slice(&443u16.to_le_bytes());
        bytes.extend_from_slice(&443u16.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = ZeroCopyCaptureReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            reader.read_record(),
            Err(CaptureError::OversizedPayload(u32::MAX))
        ));
    }

    #[test]
    fn decoder_buffer_checked_reads_never_panic() {
        let mut buf = DecoderBuffer::new(Bytes::from(vec![1, 2, 3]));
        assert_eq!(buf.read_u16_le().unwrap(), 0x0201);
        assert!(matches!(buf.read_u32_le(), Err(CaptureError::Truncated)));
        assert!(matches!(buf.read_u64_le(), Err(CaptureError::Truncated)));
        assert!(matches!(buf.split_slice(2), Err(CaptureError::Truncated)));
        assert_eq!(buf.read_u8().unwrap(), 3);
        assert!(buf.is_empty());
        assert!(matches!(buf.read_u8(), Err(CaptureError::Truncated)));
        assert_eq!(buf.offset(), 3);
    }
}
