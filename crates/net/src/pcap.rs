//! Classic libpcap export/import (LINKTYPE_RAW: raw IPv4 packets).
//!
//! Lets any capture produced by this project be opened in Wireshark —
//! whose dissectors are exactly the tool the paper's methodology builds
//! on (§4.1) — and lets pcaps of raw-IP captures be ingested back.
//!
//! Format: the classic (non-ng) container, microsecond timestamps,
//! little-endian magic `0xa1b2c3d4`, linktype 101 (RAW).

use crate::l3::{decode_ipv4, encode_ipv4, L3Error};
use crate::record::PacketRecord;
use crate::time::Timestamp;
use std::fmt;
use std::io::{self, Read, Write};

/// Classic pcap magic (microsecond resolution, our byte order).
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin with the IPv4/IPv6 header.
pub const LINKTYPE_RAW: u32 = 101;
/// Snap length written into the global header.
pub const SNAPLEN: u32 = 65_535;

/// Errors from reading a pcap stream.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Bad magic (or an unsupported pcap flavour).
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A packet body failed to parse as IPv4.
    BadPacket(L3Error),
    /// Record header cut short.
    Truncated,
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "io error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(t) => write!(f, "unsupported linktype {t}"),
            PcapError::BadPacket(e) => write!(f, "bad packet: {e}"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Writes records as a classic pcap stream.
pub struct PcapWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates the writer and emits the global header.
    ///
    /// # Errors
    /// IO errors from the sink.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&PCAP_MAGIC.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&SNAPLEN.to_le_bytes())?;
        inner.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { inner, written: 0 })
    }

    /// Appends one record (serialized to a raw IPv4 packet).
    ///
    /// # Errors
    /// IO errors from the sink.
    pub fn write(&mut self, record: &PacketRecord) -> io::Result<()> {
        let packet = encode_ipv4(record);
        let micros = record.ts.as_micros();
        self.inner
            .write_all(&((micros / 1_000_000) as u32).to_le_bytes())?;
        self.inner
            .write_all(&((micros % 1_000_000) as u32).to_le_bytes())?;
        self.inner.write_all(&(packet.len() as u32).to_le_bytes())?;
        self.inner.write_all(&(packet.len() as u32).to_le_bytes())?;
        self.inner.write_all(&packet)?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    /// IO errors from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reads a classic pcap stream of raw IPv4 packets.
pub struct PcapReader<R: Read> {
    inner: R,
}

impl<R: Read> PcapReader<R> {
    /// Creates the reader, validating the global header.
    ///
    /// # Errors
    /// [`PcapError`] on bad magic/linktype or IO failure.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut header = [0u8; 24];
        inner.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != PCAP_MAGIC {
            return Err(PcapError::BadMagic(magic));
        }
        let linktype = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
        if linktype != LINKTYPE_RAW {
            return Err(PcapError::BadLinkType(linktype));
        }
        Ok(PcapReader { inner })
    }

    fn read_record(&mut self) -> Result<Option<PacketRecord>, PcapError> {
        let mut header = [0u8; 16];
        match self.inner.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let secs = u32::from_le_bytes(header[0..4].try_into().expect("4"));
        let micros = u32::from_le_bytes(header[4..8].try_into().expect("4"));
        let incl = u32::from_le_bytes(header[8..12].try_into().expect("4")) as usize;
        let mut packet = vec![0u8; incl];
        self.inner.read_exact(&mut packet).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated
            } else {
                PcapError::Io(e)
            }
        })?;
        let ts = Timestamp::from_micros(u64::from(secs) * 1_000_000 + u64::from(micros));
        decode_ipv4(ts, &packet)
            .map(Some)
            .map_err(PcapError::BadPacket)
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PacketRecord, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

/// Serializes records to in-memory pcap bytes.
///
/// # Errors
/// Propagates IO errors (none for Vec sinks in practice).
pub fn to_pcap_bytes(records: &[PacketRecord]) -> io::Result<Vec<u8>> {
    let mut writer = PcapWriter::new(Vec::new())?;
    for record in records {
        writer.write(record)?;
    }
    writer.finish()
}

/// Parses in-memory pcap bytes.
///
/// # Errors
/// [`PcapError`] on malformed input.
pub fn from_pcap_bytes(data: &[u8]) -> Result<Vec<PacketRecord>, PcapError> {
    PcapReader::new(data)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{IcmpKind, TcpFlags};
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    fn samples() -> Vec<PacketRecord> {
        vec![
            PacketRecord::udp(
                Timestamp::from_micros(1_500_000),
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(128, 0, 0, 1),
                40_000,
                443,
                Bytes::from_static(b"payload"),
            ),
            PacketRecord::tcp(
                Timestamp::from_secs(2),
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(128, 1, 1, 1),
                443,
                5555,
                TcpFlags::SYN_ACK,
            ),
            PacketRecord::icmp(
                Timestamp::from_secs(3),
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(128, 2, 2, 2),
                IcmpKind::EchoReply,
            ),
        ]
    }

    #[test]
    fn roundtrip() {
        let records = samples();
        let bytes = to_pcap_bytes(&records).unwrap();
        let back = from_pcap_bytes(&bytes).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn global_header_layout() {
        let bytes = to_pcap_bytes(&[]).unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &PCAP_MAGIC.to_le_bytes());
        assert_eq!(&bytes[20..24], &LINKTYPE_RAW.to_le_bytes());
    }

    #[test]
    fn timestamps_preserved_with_microseconds() {
        let bytes = to_pcap_bytes(&samples()).unwrap();
        let back = from_pcap_bytes(&bytes).unwrap();
        assert_eq!(back[0].ts.as_micros(), 1_500_000);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_pcap_bytes(&samples()).unwrap();
        bytes[0] ^= 0xff;
        assert!(matches!(
            from_pcap_bytes(&bytes),
            Err(PcapError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_linktype_rejected() {
        let mut bytes = to_pcap_bytes(&[]).unwrap();
        bytes[20] = 1; // LINKTYPE_ETHERNET
        assert!(matches!(
            from_pcap_bytes(&bytes),
            Err(PcapError::BadLinkType(1))
        ));
    }

    #[test]
    fn truncated_record_detected() {
        let bytes = to_pcap_bytes(&samples()).unwrap();
        let result = from_pcap_bytes(&bytes[..bytes.len() - 3]);
        assert!(matches!(result, Err(PcapError::Truncated)), "{result:?}");
    }

    #[test]
    fn writer_counts() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        for r in samples() {
            writer.write(&r).unwrap();
        }
        assert_eq!(writer.written(), 3);
    }

    #[test]
    fn capture_and_pcap_agree() {
        // The two persistence formats hold the same information.
        let records = samples();
        let via_pcap = from_pcap_bytes(&to_pcap_bytes(&records).unwrap()).unwrap();
        let via_qscp =
            crate::capture::from_bytes(&crate::capture::to_bytes(&records).unwrap()).unwrap();
        assert_eq!(via_pcap, via_qscp);
    }
}
