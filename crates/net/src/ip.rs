//! IPv4 prefixes and address sampling.
//!
//! The UCSD telescope is a /9: it covers 2^23 addresses, i.e. 1/512 of
//! the IPv4 space. Randomly spoofed attack traffic therefore lands in the
//! telescope with probability exactly 1/512 — the constant the paper uses
//! to extrapolate global attack rates ("512 × max pps", §5.2).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    base: u32,
    len: u8,
}

/// Errors from [`Ipv4Prefix`] construction or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length above 32.
    LengthOutOfRange(u8),
    /// The base address has host bits set.
    HostBitsSet,
    /// Unparseable CIDR string.
    Malformed,
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange(n) => write!(f, "prefix length {n} out of range"),
            PrefixError::HostBitsSet => write!(f, "base address has host bits set"),
            PrefixError::Malformed => write!(f, "malformed CIDR string"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Ipv4Prefix {
    /// Creates a prefix, validating that host bits are clear.
    ///
    /// # Errors
    /// [`PrefixError`] on invalid length or set host bits.
    pub fn new(base: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange(len));
        }
        let base = u32::from(base);
        if base & !mask(len) != 0 {
            return Err(PrefixError::HostBitsSet);
        }
        Ok(Ipv4Prefix { base, len })
    }

    /// The entire IPv4 address space (`0.0.0.0/0`).
    pub const ALL: Ipv4Prefix = Ipv4Prefix { base: 0, len: 0 };

    /// The network base address.
    pub fn base(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // CIDR length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (2^(32-len)); saturates for /0 at
    /// 2^32 which still fits in u64.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The fraction of the IPv4 space this prefix covers. A /9 returns
    /// 1/512.
    pub fn share_of_ipv4(&self) -> f64 {
        1.0 / (1u64 << self.len) as f64
    }

    /// Whether `addr` falls inside the prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == self.base
    }

    /// The `index`-th address in the prefix (panics if out of range —
    /// this is a programming error, not a data error).
    pub fn nth(&self, index: u64) -> Ipv4Addr {
        assert!(index < self.size(), "address index out of prefix range");
        Ipv4Addr::from(self.base + index as u32)
    }

    /// Uniformly samples an address inside the prefix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        self.nth(rng.gen_range(0..self.size()))
    }

    /// Splits the prefix into 2^k equal subnets.
    ///
    /// # Errors
    /// [`PrefixError::LengthOutOfRange`] if the subnets would be longer
    /// than /32.
    pub fn subnets(&self, k: u8) -> Result<Vec<Ipv4Prefix>, PrefixError> {
        let new_len = self.len + k;
        if new_len > 32 {
            return Err(PrefixError::LengthOutOfRange(new_len));
        }
        let step = 1u64 << (32 - new_len);
        Ok((0..1u64 << k)
            .map(|i| Ipv4Prefix {
                base: self.base + (i * step) as u32,
                len: new_len,
            })
            .collect())
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixError::Malformed)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixError::Malformed)?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Malformed)?;
        Ipv4Prefix::new(addr, len)
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// The telescope prefix used throughout the reproduction: a /9 inside
/// documentation-friendly space. The *position* of the real UCSD /9 is
/// irrelevant to every analysis; only its size (1/512 of IPv4) matters.
pub fn telescope_prefix() -> Ipv4Prefix {
    "128.0.0.0/9".parse().expect("static prefix is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn construction_and_validation() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.base(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 8),
            Err(PrefixError::HostBitsSet)
        );
        assert_eq!(
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 33),
            Err(PrefixError::LengthOutOfRange(33))
        );
    }

    #[test]
    fn parsing() {
        let p: Ipv4Prefix = "192.168.0.0/16".parse().unwrap();
        assert_eq!(p.to_string(), "192.168.0.0/16");
        assert!("not-a-prefix".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.1/8".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn telescope_is_one_512th() {
        let t = telescope_prefix();
        assert_eq!(t.len(), 9);
        assert_eq!(t.size(), 1 << 23);
        assert!((t.share_of_ipv4() - 1.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let p: Ipv4Prefix = "128.0.0.0/9".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(128, 0, 0, 1)));
        assert!(p.contains(Ipv4Addr::new(128, 127, 255, 255)));
        assert!(!p.contains(Ipv4Addr::new(128, 128, 0, 0)));
        assert!(!p.contains(Ipv4Addr::new(127, 255, 255, 255)));
        assert!(Ipv4Prefix::ALL.contains(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn nth_and_size() {
        let p: Ipv4Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(p.size(), 4);
        assert_eq!(p.nth(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(p.nth(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(Ipv4Prefix::ALL.size(), 1u64 << 32);
    }

    #[test]
    #[should_panic(expected = "out of prefix range")]
    fn nth_out_of_range_panics() {
        let p: Ipv4Prefix = "10.0.0.0/30".parse().unwrap();
        let _ = p.nth(4);
    }

    #[test]
    fn sampling_stays_inside() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let p: Ipv4Prefix = "172.16.0.0/12".parse().unwrap();
        for _ in 0..1000 {
            assert!(p.contains(p.sample(&mut rng)));
        }
    }

    #[test]
    fn sampling_all_space_hits_telescope_at_expected_rate() {
        // Statistical check of the paper's "2 permille of any randomly
        // spoofed attack" claim: the /9 should capture ~1/512 of
        // uniform samples.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let telescope = telescope_prefix();
        let n = 512_000;
        let hits = (0..n)
            .filter(|_| telescope.contains(Ipv4Prefix::ALL.sample(&mut rng)))
            .count();
        // Expectation 1000; allow ±20 %.
        assert!((800..=1200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn subnet_split() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let subs = p.subnets(2).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/10");
        assert_eq!(subs[3].to_string(), "10.192.0.0/10");
        // Disjoint and covering.
        let total: u64 = subs.iter().map(|s| s.size()).sum();
        assert_eq!(total, p.size());
        assert!(p.subnets(30).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_display_parse(base in any::<u32>(), len in 0u8..=32) {
            let base = base & super::mask(len);
            let p = Ipv4Prefix::new(Ipv4Addr::from(base), len).unwrap();
            let back: Ipv4Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn prop_contains_iff_in_range(base in any::<u32>(), len in 0u8..=24, offset in any::<u32>()) {
            let base = base & super::mask(len);
            let p = Ipv4Prefix::new(Ipv4Addr::from(base), len).unwrap();
            let addr = Ipv4Addr::from(base.wrapping_add((u64::from(offset) % p.size()) as u32));
            prop_assert!(p.contains(addr));
        }
    }
}
