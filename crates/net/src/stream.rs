//! Unbounded record sources for the live engine.
//!
//! The batch pipeline slurps a whole capture into a `Vec`; the live
//! engine instead pulls records one at a time from a [`StreamSource`],
//! so a stream has no inherent end (a replayed capture simply runs
//! dry). Two adapters are provided: every [`CaptureReader`] is a
//! source (file replay), and [`MemoryStream`] replays an in-memory
//! record vector (e.g. a `traffic` scenario) without cloning it up
//! front.

use crate::capture::{CaptureError, CaptureReader};
use crate::record::PacketRecord;
use std::io::Read;

/// A pull-based, possibly unbounded stream of packet records.
///
/// `None` means the source is exhausted (a finite replay ended); a
/// live capture source would simply block in `next_record` until
/// traffic arrives.
pub trait StreamSource {
    /// Pulls the next record. `Some(Err(_))` reports a corrupt record;
    /// callers decide whether to stop or skip.
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>>;

    /// Pulls up to `max` records into a chunk (for batched hand-off to
    /// sharded workers). Stops early at stream end or on the first
    /// error; a partial chunk is returned before the error surfaces on
    /// the *next* call.
    fn pull_chunk(&mut self, max: usize) -> Result<Vec<PacketRecord>, CaptureError> {
        let mut chunk = Vec::with_capacity(max.min(4096));
        while chunk.len() < max {
            match self.next_record() {
                Some(Ok(record)) => chunk.push(record),
                Some(Err(error)) => {
                    if chunk.is_empty() {
                        return Err(error);
                    }
                    // Surface the partial chunk now; the error is lost
                    // unless the underlying reader re-reports it, so
                    // only readers with sticky errors should rely on
                    // this. CaptureReader stops permanently on error,
                    // which next_record maps to stream end.
                    break;
                }
                None => break,
            }
        }
        Ok(chunk)
    }
}

impl<R: Read> StreamSource for CaptureReader<R> {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        self.next()
    }
}

/// Replays an in-memory record vector as a stream.
///
/// The stream *consumes* the backing vector: each pull moves the record
/// out instead of deep-cloning it (a UDP record clone would copy its
/// whole payload, once per record, on the live path).
#[derive(Debug)]
pub struct MemoryStream {
    records: std::vec::IntoIter<PacketRecord>,
}

impl MemoryStream {
    /// Creates a stream over `records` (replayed in order).
    pub fn new(records: Vec<PacketRecord>) -> Self {
        MemoryStream {
            records: records.into_iter(),
        }
    }

    /// Records not yet pulled.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl From<Vec<PacketRecord>> for MemoryStream {
    fn from(records: Vec<PacketRecord>) -> Self {
        MemoryStream::new(records)
    }
}

impl StreamSource for MemoryStream {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        self.records.next().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TcpFlags;
    use crate::time::Timestamp;
    use std::net::Ipv4Addr;

    fn record(i: u64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_secs(i),
            Ipv4Addr::new(10, 0, 0, (i % 250) as u8),
            Ipv4Addr::new(192, 0, 2, 1),
            443,
            5000,
            TcpFlags::SYN_ACK,
        )
    }

    #[test]
    fn memory_stream_replays_in_order() {
        let records: Vec<_> = (0..10).map(record).collect();
        let mut stream = MemoryStream::new(records.clone());
        assert_eq!(stream.remaining(), 10);
        let mut out = Vec::new();
        while let Some(r) = stream.next_record() {
            out.push(r.unwrap());
        }
        assert_eq!(out, records);
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next_record().is_none());
    }

    #[test]
    fn chunked_pull_covers_everything_once() {
        let records: Vec<_> = (0..25).map(record).collect();
        let mut stream = MemoryStream::new(records.clone());
        let mut out = Vec::new();
        loop {
            let chunk = stream.pull_chunk(7).unwrap();
            if chunk.is_empty() {
                break;
            }
            assert!(chunk.len() <= 7);
            out.extend(chunk);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn capture_reader_is_a_stream_source() {
        use crate::capture::{CaptureReader, CaptureWriter};
        let mut buf = Vec::new();
        {
            let mut writer = CaptureWriter::new(&mut buf).unwrap();
            for i in 0..5 {
                writer.write(&record(i)).unwrap();
            }
            writer.finish().unwrap();
        }
        let mut reader = CaptureReader::new(buf.as_slice()).unwrap();
        let mut n = 0;
        while let Some(r) = StreamSource::next_record(&mut reader) {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n, 5);
    }
}
