//! A rate-limited, optionally lossy point-to-point link.
//!
//! Models the "Gigabit Ethernet" between the replay client and the NGINX
//! host in the paper's Table 1 testbed. Transmission delay is
//! `bytes / rate`, plus a fixed propagation delay; an optional
//! Bernoulli loss process (smoltcp-style fault injection) supports
//! robustness tests.

use crate::time::{Duration, Timestamp};
use rand::Rng;

/// Link configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Line rate in bits per second (default: 1 Gbit/s).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Probability in [0, 1] that a packet is dropped.
    pub loss: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            propagation: Duration::from_micros(200),
            loss: 0.0,
        }
    }
}

/// One direction of a link; tracks when the line is next free so that
/// back-to-back packets serialize.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    line_free_at: Timestamp,
    delivered: u64,
    dropped: u64,
}

impl Link {
    /// Creates a link with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            line_free_at: Timestamp::EPOCH,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Transmission (serialization) delay for a packet of `bytes`.
    pub fn transmission_delay(&self, bytes: usize) -> Duration {
        // bits / (bits/sec) in microseconds.
        Duration::from_micros((bytes as u64 * 8).saturating_mul(1_000_000) / self.config.rate_bps)
    }

    /// Offers a packet to the link at time `now`. Returns the delivery
    /// timestamp at the far end, or `None` if the packet was lost.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        now: Timestamp,
        bytes: usize,
        rng: &mut R,
    ) -> Option<Timestamp> {
        if self.config.loss > 0.0 && rng.gen_bool(self.config.loss.clamp(0.0, 1.0)) {
            self.dropped += 1;
            return None;
        }
        let start = now.max(self.line_free_at);
        let done = start + self.transmission_delay(bytes);
        self.line_free_at = done;
        self.delivered += 1;
        Some(done + self.config.propagation)
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped by the loss process.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    #[test]
    fn transmission_delay_scales_with_size() {
        let link = Link::new(LinkConfig {
            rate_bps: 1_000_000, // 1 Mbit/s: 1 byte = 8 us
            propagation: Duration::ZERO,
            loss: 0.0,
        });
        assert_eq!(link.transmission_delay(1).as_micros(), 8);
        assert_eq!(link.transmission_delay(1250).as_micros(), 10_000);
    }

    #[test]
    fn lossless_link_delivers_everything() {
        let mut link = Link::new(LinkConfig::default());
        let mut r = rng();
        for i in 0..100 {
            assert!(link
                .send(Timestamp::from_micros(i * 10), 1200, &mut r)
                .is_some());
        }
        assert_eq!(link.delivered(), 100);
        assert_eq!(link.dropped(), 0);
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000,
            propagation: Duration::ZERO,
            loss: 0.0,
        });
        let mut r = rng();
        // Two 1250-byte packets offered at t=0: second must wait for the
        // first's 10 ms serialization.
        let d1 = link.send(Timestamp::EPOCH, 1250, &mut r).unwrap();
        let d2 = link.send(Timestamp::EPOCH, 1250, &mut r).unwrap();
        assert_eq!(d1.as_micros(), 10_000);
        assert_eq!(d2.as_micros(), 20_000);
    }

    #[test]
    fn propagation_adds_constant() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000_000,
            propagation: Duration::from_micros(500),
            loss: 0.0,
        });
        let mut r = rng();
        let delivery = link.send(Timestamp::EPOCH, 125, &mut r).unwrap();
        // 125 bytes at 1 Gbps = 1 us + 500 us propagation.
        assert_eq!(delivery.as_micros(), 501);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut link = Link::new(LinkConfig {
            loss: 1.0,
            ..LinkConfig::default()
        });
        let mut r = rng();
        for _ in 0..50 {
            assert!(link.send(Timestamp::EPOCH, 100, &mut r).is_none());
        }
        assert_eq!(link.dropped(), 50);
        assert_eq!(link.delivered(), 0);
    }

    #[test]
    fn partial_loss_rate_is_plausible() {
        let mut link = Link::new(LinkConfig {
            loss: 0.25,
            ..LinkConfig::default()
        });
        let mut r = rng();
        let mut lost = 0;
        for i in 0..10_000u64 {
            if link
                .send(Timestamp::from_micros(i * 100), 100, &mut r)
                .is_none()
            {
                lost += 1;
            }
        }
        assert!((2000..3000).contains(&lost), "lost={lost}");
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000,
            propagation: Duration::ZERO,
            loss: 0.0,
        });
        let mut r = rng();
        let _ = link.send(Timestamp::EPOCH, 1250, &mut r); // busy until 10ms
                                                           // A packet offered at 50 ms starts immediately.
        let d = link
            .send(Timestamp::from_micros(50_000), 1250, &mut r)
            .unwrap();
        assert_eq!(d.as_micros(), 60_000);
    }
}
