//! IPv4/UDP/TCP/ICMP packet serialization — real layer-3/4 headers with
//! checksums.
//!
//! The simulation's [`PacketRecord`] keeps
//! parsed metadata; this module lowers records to actual IPv4 packets
//! (and parses them back), so captures can be exported to libpcap and
//! inspected with standard tooling (the paper's methodology leans on
//! Wireshark dissection, §4.1).

use crate::record::{IcmpKind, PacketRecord, TcpFlags, Transport};
use crate::time::Timestamp;
use bytes::Bytes;
use std::fmt;
use std::net::Ipv4Addr;

/// IPv4 protocol numbers.
mod proto {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// Errors from parsing raw IPv4 packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L3Error {
    /// Packet shorter than its headers claim.
    Truncated(&'static str),
    /// Not IPv4 or an unsupported header layout.
    Unsupported(&'static str),
    /// A checksum failed verification.
    BadChecksum(&'static str),
}

impl fmt::Display for L3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            L3Error::Truncated(what) => write!(f, "truncated {what}"),
            L3Error::Unsupported(what) => write!(f, "unsupported {what}"),
            L3Error::BadChecksum(what) => write!(f, "bad checksum in {what}"),
        }
    }
}

impl std::error::Error for L3Error {}

/// RFC 1071 Internet checksum over `data` (with an optional seed for
/// pseudo-header folding).
pub fn internet_checksum(data: &[u8], seed: u32) -> u16 {
    let mut sum = seed;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn pseudo_header_seed(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> u32 {
    let s = u32::from(src);
    let d = u32::from(dst);
    (s >> 16) + (s & 0xffff) + (d >> 16) + (d & 0xffff) + u32::from(protocol) + u32::from(len)
}

/// Serializes a record to a raw IPv4 packet (header + transport).
pub fn encode_ipv4(record: &PacketRecord) -> Vec<u8> {
    let (protocol, transport_bytes) = match &record.transport {
        Transport::Udp {
            src_port,
            dst_port,
            payload,
        } => {
            let len = (8 + payload.len()) as u16;
            let mut t = Vec::with_capacity(len as usize);
            t.extend_from_slice(&src_port.to_be_bytes());
            t.extend_from_slice(&dst_port.to_be_bytes());
            t.extend_from_slice(&len.to_be_bytes());
            t.extend_from_slice(&[0, 0]); // checksum placeholder
            t.extend_from_slice(payload);
            let seed = pseudo_header_seed(record.src, record.dst, proto::UDP, len);
            let mut checksum = internet_checksum(&t, seed);
            if checksum == 0 {
                checksum = 0xffff; // RFC 768: zero means "no checksum"
            }
            t[6..8].copy_from_slice(&checksum.to_be_bytes());
            (proto::UDP, t)
        }
        Transport::Tcp {
            src_port,
            dst_port,
            flags,
        } => {
            let mut t = Vec::with_capacity(20);
            t.extend_from_slice(&src_port.to_be_bytes());
            t.extend_from_slice(&dst_port.to_be_bytes());
            t.extend_from_slice(&0u32.to_be_bytes()); // seq
            t.extend_from_slice(&0u32.to_be_bytes()); // ack
            let mut flag_bits = 0u8;
            if flags.fin {
                flag_bits |= 0x01;
            }
            if flags.syn {
                flag_bits |= 0x02;
            }
            if flags.rst {
                flag_bits |= 0x04;
            }
            if flags.ack {
                flag_bits |= 0x10;
            }
            t.push(5 << 4); // data offset 5 words
            t.push(flag_bits);
            t.extend_from_slice(&0xffffu16.to_be_bytes()); // window
            t.extend_from_slice(&[0, 0]); // checksum placeholder
            t.extend_from_slice(&[0, 0]); // urgent
            let seed = pseudo_header_seed(record.src, record.dst, proto::TCP, 20);
            let checksum = internet_checksum(&t, seed);
            t[16..18].copy_from_slice(&checksum.to_be_bytes());
            (proto::TCP, t)
        }
        Transport::Icmp { kind } => {
            let (ty, code) = match kind {
                IcmpKind::EchoRequest => (8u8, 0u8),
                IcmpKind::EchoReply => (0, 0),
                IcmpKind::DestUnreachable => (3, 3), // port unreachable
                IcmpKind::TtlExceeded => (11, 0),
            };
            let mut t = vec![ty, code, 0, 0, 0, 0, 0, 0];
            let checksum = internet_checksum(&t, 0);
            t[2..4].copy_from_slice(&checksum.to_be_bytes());
            (proto::ICMP, t)
        }
    };

    let total_len = (20 + transport_bytes.len()) as u16;
    let mut packet = Vec::with_capacity(total_len as usize);
    packet.push(0x45); // version 4, IHL 5
    packet.push(0); // DSCP/ECN
    packet.extend_from_slice(&total_len.to_be_bytes());
    packet.extend_from_slice(&[0, 0]); // identification
    packet.extend_from_slice(&[0x40, 0]); // don't-fragment
    packet.push(64); // TTL
    packet.push(protocol);
    packet.extend_from_slice(&[0, 0]); // header checksum placeholder
    packet.extend_from_slice(&record.src.octets());
    packet.extend_from_slice(&record.dst.octets());
    let checksum = internet_checksum(&packet, 0);
    packet[10..12].copy_from_slice(&checksum.to_be_bytes());
    packet.extend_from_slice(&transport_bytes);
    packet
}

/// Parses a raw IPv4 packet back into a record (checksums verified).
///
/// # Errors
/// [`L3Error`] describing the first problem.
pub fn decode_ipv4(ts: Timestamp, packet: &[u8]) -> Result<PacketRecord, L3Error> {
    if packet.len() < 20 {
        return Err(L3Error::Truncated("ipv4 header"));
    }
    if packet[0] >> 4 != 4 {
        return Err(L3Error::Unsupported("ip version"));
    }
    let ihl = usize::from(packet[0] & 0x0f) * 4;
    if ihl < 20 || packet.len() < ihl {
        return Err(L3Error::Truncated("ipv4 options"));
    }
    if internet_checksum(&packet[..ihl], 0) != 0 {
        return Err(L3Error::BadChecksum("ipv4 header"));
    }
    let total_len = usize::from(u16::from_be_bytes([packet[2], packet[3]]));
    if packet.len() < total_len {
        return Err(L3Error::Truncated("ipv4 payload"));
    }
    let protocol = packet[9];
    let src = Ipv4Addr::new(packet[12], packet[13], packet[14], packet[15]);
    let dst = Ipv4Addr::new(packet[16], packet[17], packet[18], packet[19]);
    let body = &packet[ihl..total_len];

    let transport = match protocol {
        proto::UDP => {
            if body.len() < 8 {
                return Err(L3Error::Truncated("udp header"));
            }
            let src_port = u16::from_be_bytes([body[0], body[1]]);
            let dst_port = u16::from_be_bytes([body[2], body[3]]);
            let len = usize::from(u16::from_be_bytes([body[4], body[5]]));
            if len < 8 || body.len() < len {
                return Err(L3Error::Truncated("udp payload"));
            }
            let seed = pseudo_header_seed(src, dst, proto::UDP, len as u16);
            if internet_checksum(&body[..len], seed) != 0 {
                return Err(L3Error::BadChecksum("udp"));
            }
            Transport::Udp {
                src_port,
                dst_port,
                payload: Bytes::copy_from_slice(&body[8..len]),
            }
        }
        proto::TCP => {
            if body.len() < 20 {
                return Err(L3Error::Truncated("tcp header"));
            }
            let seed = pseudo_header_seed(src, dst, proto::TCP, body.len() as u16);
            if internet_checksum(body, seed) != 0 {
                return Err(L3Error::BadChecksum("tcp"));
            }
            let flag_bits = body[13];
            Transport::Tcp {
                src_port: u16::from_be_bytes([body[0], body[1]]),
                dst_port: u16::from_be_bytes([body[2], body[3]]),
                flags: TcpFlags {
                    fin: flag_bits & 0x01 != 0,
                    syn: flag_bits & 0x02 != 0,
                    rst: flag_bits & 0x04 != 0,
                    ack: flag_bits & 0x10 != 0,
                },
            }
        }
        proto::ICMP => {
            if body.len() < 8 {
                return Err(L3Error::Truncated("icmp header"));
            }
            if internet_checksum(body, 0) != 0 {
                return Err(L3Error::BadChecksum("icmp"));
            }
            let kind = match (body[0], body[1]) {
                (8, _) => IcmpKind::EchoRequest,
                (0, _) => IcmpKind::EchoReply,
                (3, _) => IcmpKind::DestUnreachable,
                (11, _) => IcmpKind::TtlExceeded,
                _ => return Err(L3Error::Unsupported("icmp type")),
            };
            Transport::Icmp { kind }
        }
        _ => return Err(L3Error::Unsupported("ip protocol")),
    };

    Ok(PacketRecord {
        ts,
        src,
        dst,
        transport,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, 3, 4)
    }

    fn samples() -> Vec<PacketRecord> {
        vec![
            PacketRecord::udp(
                Timestamp::from_secs(1),
                ip(1, 2),
                ip(128, 0),
                40_000,
                443,
                Bytes::from_static(b"\xc3quic payload"),
            ),
            PacketRecord::udp(
                Timestamp::from_secs(2),
                ip(9, 9),
                ip(128, 1),
                443,
                1234,
                Bytes::new(),
            ),
            PacketRecord::tcp(
                Timestamp::from_secs(3),
                ip(8, 8),
                ip(128, 2),
                443,
                5555,
                TcpFlags::SYN_ACK,
            ),
            PacketRecord::icmp(
                Timestamp::from_secs(4),
                ip(7, 7),
                ip(128, 3),
                IcmpKind::DestUnreachable,
            ),
        ]
    }

    #[test]
    fn roundtrip_all_transports() {
        for record in samples() {
            let wire = encode_ipv4(&record);
            let back = decode_ipv4(record.ts, &wire).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn ipv4_header_is_wireshark_sane() {
        let record = &samples()[0];
        let wire = encode_ipv4(record);
        assert_eq!(wire[0], 0x45);
        assert_eq!(wire[9], 17, "protocol UDP");
        assert_eq!(&wire[12..16], &record.src.octets());
        assert_eq!(&wire[16..20], &record.dst.octets());
        let total = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        assert_eq!(total, wire.len());
        // Header checksum verifies to zero.
        assert_eq!(internet_checksum(&wire[..20], 0), 0);
    }

    #[test]
    fn corrupted_checksums_rejected() {
        for record in samples() {
            let mut wire = encode_ipv4(&record);
            // Flip a payload/header byte past the IP header.
            let idx = wire.len() - 1;
            wire[idx] ^= 0xff;
            let result = decode_ipv4(record.ts, &wire);
            assert!(
                matches!(
                    result,
                    Err(L3Error::BadChecksum(_)) | Err(L3Error::Truncated(_))
                ),
                "corruption must be detected, got {result:?}"
            );
        }
    }

    #[test]
    fn corrupted_ip_header_rejected() {
        let mut wire = encode_ipv4(&samples()[0]);
        wire[8] = 63; // change TTL without fixing the checksum
        assert_eq!(
            decode_ipv4(Timestamp::EPOCH, &wire),
            Err(L3Error::BadChecksum("ipv4 header"))
        );
    }

    #[test]
    fn truncation_rejected() {
        let wire = encode_ipv4(&samples()[0]);
        for cut in [0, 10, 19, 24] {
            assert!(decode_ipv4(Timestamp::EPOCH, &wire[..cut]).is_err());
        }
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut wire = encode_ipv4(&samples()[0]);
        wire[0] = 0x65; // version 6
        assert_eq!(
            decode_ipv4(Timestamp::EPOCH, &wire),
            Err(L3Error::Unsupported("ip version"))
        );
    }

    #[test]
    fn checksum_rfc1071_examples() {
        // Canonical example: checksum of the example header from
        // RFC 1071 discussions verifies to zero after insertion.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let c = internet_checksum(&data, 0);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with, 0), 0);
        // Odd-length input.
        assert_ne!(internet_checksum(&[0xab], 0), 0);
    }

    proptest! {
        #[test]
        fn prop_udp_roundtrip(
            src in any::<u32>(),
            dst in any::<u32>(),
            sp in any::<u16>(),
            dp in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..600),
        ) {
            let record = PacketRecord::udp(
                Timestamp::from_secs(5),
                Ipv4Addr::from(src),
                Ipv4Addr::from(dst),
                sp,
                dp,
                Bytes::from(payload),
            );
            let wire = encode_ipv4(&record);
            prop_assert_eq!(decode_ipv4(record.ts, &wire).unwrap(), record);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = decode_ipv4(Timestamp::EPOCH, &data);
        }
    }
}
