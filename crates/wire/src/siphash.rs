//! SipHash-2-4: the keyed pseudo-random function backing this crate's toy
//! packet protection and retry integrity tags.
//!
//! Real QUIC uses AES-128-GCM (RFC 9001). The QUICsand reproduction does
//! not need confidentiality against real adversaries — only the
//! *structure* of protected packets (an unforgeable-ish 16-byte tag,
//! key-dependent ciphertext, keys derived from the client's destination
//! connection ID). SipHash-2-4 with a per-connection key reproduces that
//! structure deterministically and dependency-free. See DESIGN.md §2.
//!
//! The implementation follows the reference description by Aumasson and
//! Bernstein and is validated against the official test vectors.

/// A 128-bit SipHash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// Low 64 bits (k0).
    pub k0: u64,
    /// High 64 bits (k1).
    pub k1: u64,
}

impl SipKey {
    /// Builds a key from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Serializes the key to 16 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.k0.to_le_bytes());
        out[8..16].copy_from_slice(&self.k1.to_le_bytes());
        out
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under `key`, returning the 64-bit tag.
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= u64::from(b) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Computes a 128-bit tag by evaluating SipHash-2-4 twice with domain
/// separation. Used for the 16-byte retry integrity tag.
pub fn siphash24_128(key: SipKey, data: &[u8]) -> [u8; 16] {
    let lo = siphash24(key, data);
    let sep_key = SipKey {
        k0: key.k0 ^ 0x5151_4943_5341_4e44, // "QICSAND"
        k1: key.k1.rotate_left(1),
    };
    let hi = siphash24(sep_key, data);
    let mut out = [0u8; 16];
    out[0..8].copy_from_slice(&lo.to_le_bytes());
    out[8..16].copy_from_slice(&hi.to_le_bytes());
    out
}

/// Streaming SipHash-2-4 with the official 128-bit output extension
/// (`v1 ^= 0xee` at init, double finalization), fed incrementally.
///
/// This exists for the packet-protection hot path: the AEAD tag covers
/// `packet_number || header || ciphertext`, and an incremental state
/// hashes those parts in place instead of concatenating them into a
/// temporary allocation per packet. One compression pass replaces the
/// two full passes of [`siphash24_128`] (which is kept unchanged for the
/// retry and token tags it already protects).
pub struct SipHasher128 {
    v: [u64; 4],
    tail: u64,
    ntail: usize,
    len: usize,
}

impl SipHasher128 {
    /// Initializes the state for `key`.
    pub fn new(key: SipKey) -> Self {
        SipHasher128 {
            v: [
                key.k0 ^ 0x736f_6d65_7073_6575,
                key.k1 ^ 0x646f_7261_6e64_6f6d ^ 0xee,
                key.k0 ^ 0x6c79_6765_6e65_7261,
                key.k1 ^ 0x7465_6462_7974_6573,
            ],
            tail: 0,
            ntail: 0,
            len: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v[3] ^= m;
        sipround(&mut self.v);
        sipround(&mut self.v);
        self.v[0] ^= m;
    }

    /// Absorbs `data`, equivalent to hashing the concatenation of every
    /// slice written so far.
    pub fn write(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len());
        let mut data = data;
        if self.ntail != 0 {
            let need = 8 - self.ntail;
            let take = need.min(data.len());
            for &b in &data[..take] {
                self.tail |= u64::from(b) << (8 * self.ntail);
                self.ntail += 1;
            }
            data = &data[take..];
            if self.ntail < 8 {
                return;
            }
            self.compress(self.tail);
            self.tail = 0;
            self.ntail = 0;
        }
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            self.compress(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= u64::from(b) << (8 * i);
        }
        self.ntail = data.len() % 8;
    }

    /// Finalizes the state and returns the 16-byte tag.
    pub fn finish128(mut self) -> [u8; 16] {
        let last = ((self.len as u64 & 0xff) << 56) | self.tail;
        self.compress(last);
        self.v[2] ^= 0xee;
        for _ in 0..4 {
            sipround(&mut self.v);
        }
        let lo = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];
        self.v[1] ^= 0xdd;
        for _ in 0..4 {
            sipround(&mut self.v);
        }
        let hi = self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3];
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&lo.to_le_bytes());
        out[8..16].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// A deterministic keystream generator built from the SipHash round
/// function in counter mode.
///
/// This is the "cipher" of the toy AEAD: the key and nonce are absorbed
/// once into a SipHash state, then each 64-bit keystream word is produced
/// by compressing the block counter into a copy of that base state
/// (`v3 ^= ctr; SipRound²; v0 ^= ctr; fold`). It is *not* secure against
/// a cryptographic adversary and exists only so protected QUIC payloads
/// in the simulation are key-dependent and look uniformly random to the
/// dissector, as on the real wire. Relative to the previous formulation
/// (a full SipHash-2-4 evaluation of `nonce || counter` per word) this
/// costs 2 rounds per 8 output bytes instead of 10, which matters on the
/// ingest hot path where every candidate Initial is trial-decrypted.
pub struct KeyStream {
    base: [u64; 4],
    counter: u64,
    buf: [u8; 8],
    used: usize,
}

impl KeyStream {
    /// Creates a keystream for `key` and `nonce` (e.g. a packet number).
    pub fn new(key: SipKey, nonce: u64) -> Self {
        let mut v = [
            key.k0 ^ 0x736f_6d65_7073_6575,
            key.k1 ^ 0x646f_7261_6e64_6f6d,
            key.k0 ^ 0x6c79_6765_6e65_7261,
            key.k1 ^ 0x7465_6462_7974_6573,
        ];
        // Absorb the nonce like a SipHash message block.
        v[3] ^= nonce;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= nonce;
        KeyStream {
            base: v,
            counter: 0,
            buf: [0; 8],
            used: 8,
        }
    }

    /// Produces the next 64-bit keystream word (little-endian byte order
    /// when consumed through [`next_byte`](Self::next_byte)).
    #[inline]
    fn word(&mut self) -> u64 {
        let mut v = self.base;
        let ctr = self.counter;
        v[3] ^= ctr;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= ctr;
        self.counter += 1;
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }

    fn refill(&mut self) {
        self.buf = self.word().to_le_bytes();
        self.used = 0;
    }

    /// Returns the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.used == 8 {
            self.refill();
        }
        let b = self.buf[self.used];
        self.used += 1;
        b
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    ///
    /// Word-aligned stretches are XORed eight bytes at a time; the result
    /// is identical to calling [`next_byte`](Self::next_byte) per byte.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut i = 0;
        // Drain any partially consumed word first.
        while self.used < 8 && i < data.len() {
            data[i] ^= self.buf[self.used];
            self.used += 1;
            i += 1;
        }
        let mut chunks = data[i..].chunks_exact_mut(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes((&*chunk).try_into().expect("8 bytes")) ^ self.word();
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        for b in chunks.into_remainder() {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors (key = 00 01 .. 0f, inputs of
    /// increasing length 00, 00 01, ...). From the reference
    /// implementation's vectors.h.
    #[test]
    fn reference_vectors() {
        let key_bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let key = SipKey::from_bytes(&key_bytes);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let data: Vec<u8> = (0..8).map(|i| i as u8).collect();
        for (len, want) in expected.iter().enumerate() {
            let got = siphash24(key, &data[..len]);
            assert_eq!(got, *want, "vector length {len}");
        }
    }

    #[test]
    fn key_bytes_roundtrip() {
        let key_bytes: [u8; 16] = core::array::from_fn(|i| (i * 7) as u8);
        let key = SipKey::from_bytes(&key_bytes);
        assert_eq!(key.to_bytes(), key_bytes);
    }

    #[test]
    fn different_keys_different_tags() {
        let a = SipKey { k0: 1, k1: 2 };
        let b = SipKey { k0: 1, k1: 3 };
        assert_ne!(siphash24(a, b"hello"), siphash24(b, b"hello"));
    }

    #[test]
    fn tag128_halves_are_independent() {
        let key = SipKey { k0: 42, k1: 43 };
        let tag = siphash24_128(key, b"quicsand");
        assert_ne!(&tag[0..8], &tag[8..16]);
        // Deterministic.
        assert_eq!(tag, siphash24_128(key, b"quicsand"));
        assert_ne!(tag, siphash24_128(key, b"quicsanD"));
    }

    #[test]
    fn keystream_xor_is_involutive() {
        let key = SipKey { k0: 7, k1: 9 };
        let mut data = b"attack at dawn, spoofed source".to_vec();
        let original = data.clone();
        KeyStream::new(key, 77).apply(&mut data);
        assert_ne!(data, original, "ciphertext differs from plaintext");
        KeyStream::new(key, 77).apply(&mut data);
        assert_eq!(data, original, "decrypting restores plaintext");
    }

    #[test]
    fn keystream_depends_on_nonce() {
        let key = SipKey { k0: 7, k1: 9 };
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        KeyStream::new(key, 1).apply(&mut a);
        KeyStream::new(key, 2).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_128_matches_any_split() {
        let key = SipKey { k0: 11, k1: 13 };
        let data: Vec<u8> = (0..100u16).map(|i| (i * 31) as u8).collect();
        let mut reference = SipHasher128::new(key);
        reference.write(&data);
        let reference = reference.finish128();
        for cut_a in 0..data.len() {
            for cut_b in cut_a..data.len() {
                let mut h = SipHasher128::new(key);
                h.write(&data[..cut_a]);
                h.write(&data[cut_a..cut_b]);
                h.write(&data[cut_b..]);
                assert_eq!(
                    h.finish128(),
                    reference,
                    "splits at {cut_a}/{cut_b} must not change the tag"
                );
            }
        }
    }

    #[test]
    fn streaming_128_halves_are_independent() {
        let key = SipKey { k0: 42, k1: 43 };
        let mut h = SipHasher128::new(key);
        h.write(b"quicsand");
        let tag = h.finish128();
        assert_ne!(&tag[0..8], &tag[8..16]);
        let mut h2 = SipHasher128::new(key);
        h2.write(b"quicsanD");
        assert_ne!(tag, h2.finish128());
    }

    #[test]
    fn keystream_apply_matches_byte_at_a_time() {
        let key = SipKey { k0: 3, k1: 5 };
        // Apply in ragged chunks so the word-wise path has to cross
        // partially consumed buffer boundaries.
        let mut chunked = vec![0u8; 131];
        let mut ks = KeyStream::new(key, 9);
        let mut offset = 0;
        for step in [1usize, 7, 8, 3, 16, 29, 40, 27] {
            let end = (offset + step).min(chunked.len());
            ks.apply(&mut chunked[offset..end]);
            offset = end;
        }
        let mut bytewise = vec![0u8; 131];
        let mut ks = KeyStream::new(key, 9);
        for b in &mut bytewise {
            *b ^= ks.next_byte();
        }
        assert_eq!(chunked, bytewise);
    }

    #[test]
    fn keystream_is_byte_position_dependent() {
        let key = SipKey { k0: 0, k1: 0 };
        let mut ks = KeyStream::new(key, 0);
        let bytes: Vec<u8> = (0..64).map(|_| ks.next_byte()).collect();
        // 64 bytes of keystream should not all be identical.
        assert!(bytes.windows(2).any(|w| w[0] != w[1]));
    }
}
