//! SipHash-2-4: the keyed pseudo-random function backing this crate's toy
//! packet protection and retry integrity tags.
//!
//! Real QUIC uses AES-128-GCM (RFC 9001). The QUICsand reproduction does
//! not need confidentiality against real adversaries — only the
//! *structure* of protected packets (an unforgeable-ish 16-byte tag,
//! key-dependent ciphertext, keys derived from the client's destination
//! connection ID). SipHash-2-4 with a per-connection key reproduces that
//! structure deterministically and dependency-free. See DESIGN.md §2.
//!
//! The implementation follows the reference description by Aumasson and
//! Bernstein and is validated against the official test vectors.

/// A 128-bit SipHash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// Low 64 bits (k0).
    pub k0: u64,
    /// High 64 bits (k1).
    pub k1: u64,
}

impl SipKey {
    /// Builds a key from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Serializes the key to 16 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..8].copy_from_slice(&self.k0.to_le_bytes());
        out[8..16].copy_from_slice(&self.k1.to_le_bytes());
        out
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under `key`, returning the 64-bit tag.
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= u64::from(b) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Computes a 128-bit tag by evaluating SipHash-2-4 twice with domain
/// separation. Used for the 16-byte retry integrity tag.
pub fn siphash24_128(key: SipKey, data: &[u8]) -> [u8; 16] {
    let lo = siphash24(key, data);
    let sep_key = SipKey {
        k0: key.k0 ^ 0x5151_4943_5341_4e44, // "QICSAND"
        k1: key.k1.rotate_left(1),
    };
    let hi = siphash24(sep_key, data);
    let mut out = [0u8; 16];
    out[0..8].copy_from_slice(&lo.to_le_bytes());
    out[8..16].copy_from_slice(&hi.to_le_bytes());
    out
}

/// A deterministic keystream generator built from SipHash in counter mode.
///
/// This is the "cipher" of the toy AEAD: `keystream[i] = SipHash(key,
/// nonce || counter)` expanded byte-wise. It is *not* secure against a
/// cryptographic adversary and exists only so protected QUIC payloads in
/// the simulation are key-dependent and look uniformly random to the
/// dissector, as on the real wire.
pub struct KeyStream {
    key: SipKey,
    nonce: u64,
    counter: u64,
    buf: [u8; 8],
    used: usize,
}

impl KeyStream {
    /// Creates a keystream for `key` and `nonce` (e.g. a packet number).
    pub fn new(key: SipKey, nonce: u64) -> Self {
        KeyStream {
            key,
            nonce,
            counter: 0,
            buf: [0; 8],
            used: 8,
        }
    }

    fn refill(&mut self) {
        let mut input = [0u8; 16];
        input[0..8].copy_from_slice(&self.nonce.to_le_bytes());
        input[8..16].copy_from_slice(&self.counter.to_le_bytes());
        let word = siphash24(self.key, &input);
        self.buf = word.to_le_bytes();
        self.used = 0;
        self.counter += 1;
    }

    /// Returns the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        if self.used == 8 {
            self.refill();
        }
        let b = self.buf[self.used];
        self.used += 1;
        b
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data {
            *b ^= self.next_byte();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors (key = 00 01 .. 0f, inputs of
    /// increasing length 00, 00 01, ...). From the reference
    /// implementation's vectors.h.
    #[test]
    fn reference_vectors() {
        let key_bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let key = SipKey::from_bytes(&key_bytes);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let data: Vec<u8> = (0..8).map(|i| i as u8).collect();
        for (len, want) in expected.iter().enumerate() {
            let got = siphash24(key, &data[..len]);
            assert_eq!(got, *want, "vector length {len}");
        }
    }

    #[test]
    fn key_bytes_roundtrip() {
        let key_bytes: [u8; 16] = core::array::from_fn(|i| (i * 7) as u8);
        let key = SipKey::from_bytes(&key_bytes);
        assert_eq!(key.to_bytes(), key_bytes);
    }

    #[test]
    fn different_keys_different_tags() {
        let a = SipKey { k0: 1, k1: 2 };
        let b = SipKey { k0: 1, k1: 3 };
        assert_ne!(siphash24(a, b"hello"), siphash24(b, b"hello"));
    }

    #[test]
    fn tag128_halves_are_independent() {
        let key = SipKey { k0: 42, k1: 43 };
        let tag = siphash24_128(key, b"quicsand");
        assert_ne!(&tag[0..8], &tag[8..16]);
        // Deterministic.
        assert_eq!(tag, siphash24_128(key, b"quicsand"));
        assert_ne!(tag, siphash24_128(key, b"quicsanD"));
    }

    #[test]
    fn keystream_xor_is_involutive() {
        let key = SipKey { k0: 7, k1: 9 };
        let mut data = b"attack at dawn, spoofed source".to_vec();
        let original = data.clone();
        KeyStream::new(key, 77).apply(&mut data);
        assert_ne!(data, original, "ciphertext differs from plaintext");
        KeyStream::new(key, 77).apply(&mut data);
        assert_eq!(data, original, "decrypting restores plaintext");
    }

    #[test]
    fn keystream_depends_on_nonce() {
        let key = SipKey { k0: 7, k1: 9 };
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        KeyStream::new(key, 1).apply(&mut a);
        KeyStream::new(key, 2).apply(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_is_byte_position_dependent() {
        let key = SipKey { k0: 0, k1: 0 };
        let mut ks = KeyStream::new(key, 0);
        let bytes: Vec<u8> = (0..64).map(|_| ks.next_byte()).collect();
        // 64 bytes of keystream should not all be identical.
        assert!(bytes.windows(2).any(|w| w[0] != w[1]));
    }
}
