//! QUIC packet headers (RFC 9000 §17).
//!
//! Long headers carry the version and both connection IDs and are used
//! during handshakes — which is all a telescope ever sees of a flood.
//! Short (1-RTT) headers carry only the destination connection ID.

use crate::cid::ConnectionId;
use crate::error::{WireError, WireResult};
use crate::version::Version;
use bytes::{Buf, BufMut};

/// Form bit: set for long headers (RFC 9000 §17.2).
pub const FORM_BIT: u8 = 0x80;
/// Fixed bit: must be set in all v1 packets (RFC 9000 §17.2/§17.3).
pub const FIXED_BIT: u8 = 0x40;

/// The four long-header packet types (RFC 9000 §17.2, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LongPacketType {
    /// Initial packet — carries the first CRYPTO flight and a token field.
    Initial,
    /// 0-RTT packet — early application data.
    ZeroRtt,
    /// Handshake packet — the remainder of the TLS handshake.
    Handshake,
    /// Retry packet — address-validation challenge (Table 1's defence).
    Retry,
}

impl LongPacketType {
    /// The two type bits as placed in bits 4–5 of the first byte.
    pub fn bits(self) -> u8 {
        match self {
            LongPacketType::Initial => 0b00,
            LongPacketType::ZeroRtt => 0b01,
            LongPacketType::Handshake => 0b10,
            LongPacketType::Retry => 0b11,
        }
    }

    /// Parses the two type bits.
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => LongPacketType::Initial,
            0b01 => LongPacketType::ZeroRtt,
            0b10 => LongPacketType::Handshake,
            _ => LongPacketType::Retry,
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            LongPacketType::Initial => "Initial",
            LongPacketType::ZeroRtt => "0-RTT",
            LongPacketType::Handshake => "Handshake",
            LongPacketType::Retry => "Retry",
        }
    }
}

/// The invariant prefix of a long-header packet: first byte through the
/// source connection ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongHeader {
    /// Packet type from the first byte.
    pub ty: LongPacketType,
    /// QUIC version.
    pub version: Version,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Source connection ID.
    pub scid: ConnectionId,
}

impl LongHeader {
    /// Encodes the header prefix. `pn_len` (1–4) fills the low two bits
    /// for packet types that carry a packet number; pass 1 for Retry.
    ///
    /// # Errors
    /// [`WireError::InvalidValue`] for an illegal `pn_len`.
    pub fn encode<B: BufMut>(&self, buf: &mut B, pn_len: usize) -> WireResult<()> {
        if !(1..=4).contains(&pn_len) {
            return Err(WireError::InvalidValue {
                what: "packet number length",
            });
        }
        let first = FORM_BIT | FIXED_BIT | (self.ty.bits() << 4) | ((pn_len as u8) - 1);
        buf.put_u8(first);
        buf.put_u32(self.version.to_wire());
        self.dcid.encode_with_len(buf);
        self.scid.encode_with_len(buf);
        Ok(())
    }

    /// Decodes a long-header prefix, returning the header, the raw first
    /// byte (callers need its packet-number-length bits) — the buffer is
    /// left positioned after the SCID.
    ///
    /// # Errors
    /// Any [`WireError`] describing the malformation; notably
    /// [`WireError::FixedBitUnset`] for non-QUIC UDP payloads, which is
    /// the dissector's primary rejection path.
    pub fn decode<B: Buf>(buf: &mut B) -> WireResult<(Self, u8)> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEnd { what: "first byte" });
        }
        let first = buf.get_u8();
        if first & FORM_BIT == 0 {
            return Err(WireError::InvalidValue {
                what: "form bit (short header)",
            });
        }
        if buf.remaining() < 4 {
            return Err(WireError::UnexpectedEnd { what: "version" });
        }
        let version = Version::from_wire(buf.get_u32());
        // Version Negotiation packets are exempt from the fixed bit
        // (RFC 9000 §17.2.1); everything else must set it.
        if version != Version::Negotiation && first & FIXED_BIT == 0 {
            return Err(WireError::FixedBitUnset);
        }
        let dcid = ConnectionId::decode_with_len(buf)?;
        let scid = ConnectionId::decode_with_len(buf)?;
        let ty = LongPacketType::from_bits(first >> 4);
        Ok((
            LongHeader {
                ty,
                version,
                dcid,
                scid,
            },
            first,
        ))
    }

    /// Packet-number length encoded in a first byte (valid for Initial,
    /// 0-RTT and Handshake packets after header-protection removal).
    pub fn pn_len_from_first_byte(first: u8) -> usize {
        ((first & 0b11) + 1) as usize
    }
}

/// A short (1-RTT) header. The DCID length is not self-describing; the
/// receiver must know it out-of-band (RFC 9000 §17.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortHeader {
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Latency spin bit.
    pub spin: bool,
    /// Key phase bit.
    pub key_phase: bool,
}

impl ShortHeader {
    /// Encodes the short header with the given packet-number length.
    ///
    /// # Errors
    /// [`WireError::InvalidValue`] for an illegal `pn_len`.
    pub fn encode<B: BufMut>(&self, buf: &mut B, pn_len: usize) -> WireResult<()> {
        if !(1..=4).contains(&pn_len) {
            return Err(WireError::InvalidValue {
                what: "packet number length",
            });
        }
        let mut first = FIXED_BIT | ((pn_len as u8) - 1);
        if self.spin {
            first |= 0x20;
        }
        if self.key_phase {
            first |= 0x04;
        }
        buf.put_u8(first);
        buf.put_slice(self.dcid.as_slice());
        Ok(())
    }

    /// Decodes a short header whose DCID is known to be `dcid_len` bytes.
    ///
    /// # Errors
    /// Standard [`WireError`] variants on malformed or truncated input.
    pub fn decode<B: Buf>(buf: &mut B, dcid_len: usize) -> WireResult<(Self, u8)> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEnd { what: "first byte" });
        }
        let first = buf.get_u8();
        if first & FORM_BIT != 0 {
            return Err(WireError::InvalidValue {
                what: "form bit (long header)",
            });
        }
        if first & FIXED_BIT == 0 {
            return Err(WireError::FixedBitUnset);
        }
        if dcid_len > crate::cid::MAX_CID_LEN {
            return Err(WireError::CidTooLong(dcid_len));
        }
        if buf.remaining() < dcid_len {
            return Err(WireError::UnexpectedEnd { what: "short dcid" });
        }
        let mut bytes = [0u8; crate::cid::MAX_CID_LEN];
        buf.copy_to_slice(&mut bytes[..dcid_len]);
        let dcid = ConnectionId::new(&bytes[..dcid_len]).expect("<= 20");
        Ok((
            ShortHeader {
                dcid,
                spin: first & 0x20 != 0,
                key_phase: first & 0x04 != 0,
            },
            first,
        ))
    }
}

/// Either header form, as classified from the first byte of a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Header {
    /// A long header (Initial, 0-RTT, Handshake, Retry or Version
    /// Negotiation).
    Long(LongHeader),
    /// A short (1-RTT) header.
    Short(ShortHeader),
}

impl Header {
    /// True if the first byte of a datagram announces a long header.
    pub fn is_long(first_byte: u8) -> bool {
        first_byte & FORM_BIT != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_long(ty: LongPacketType) -> LongHeader {
        LongHeader {
            ty,
            version: Version::V1,
            dcid: ConnectionId::new(&[1, 2, 3, 4]).unwrap(),
            scid: ConnectionId::new(&[5, 6, 7, 8, 9]).unwrap(),
        }
    }

    #[test]
    fn type_bits_roundtrip() {
        for ty in [
            LongPacketType::Initial,
            LongPacketType::ZeroRtt,
            LongPacketType::Handshake,
            LongPacketType::Retry,
        ] {
            assert_eq!(LongPacketType::from_bits(ty.bits()), ty);
        }
        assert_eq!(LongPacketType::Initial.name(), "Initial");
        assert_eq!(LongPacketType::Handshake.name(), "Handshake");
    }

    #[test]
    fn long_header_roundtrip_all_types() {
        for ty in [
            LongPacketType::Initial,
            LongPacketType::ZeroRtt,
            LongPacketType::Handshake,
            LongPacketType::Retry,
        ] {
            let hdr = sample_long(ty);
            let mut buf = Vec::new();
            hdr.encode(&mut buf, 2).unwrap();
            let mut slice = &buf[..];
            let (decoded, first) = LongHeader::decode(&mut slice).unwrap();
            assert_eq!(decoded, hdr);
            assert_eq!(LongHeader::pn_len_from_first_byte(first), 2);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn first_byte_layout() {
        let hdr = sample_long(LongPacketType::Handshake);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 4).unwrap();
        // form | fixed | type=10 | pnlen-1=11
        assert_eq!(buf[0], 0b1110_0011);
        // version immediately follows
        assert_eq!(&buf[1..5], &[0, 0, 0, 1]);
    }

    #[test]
    fn rejects_short_form_in_long_decode() {
        let mut slice: &[u8] = &[0x40, 0, 0, 0, 1, 0, 0];
        assert!(matches!(
            LongHeader::decode(&mut slice),
            Err(WireError::InvalidValue { .. })
        ));
    }

    #[test]
    fn rejects_unset_fixed_bit() {
        // Long form, fixed bit clear, version 1.
        let mut slice: &[u8] = &[0x80, 0, 0, 0, 1, 0, 0];
        assert_eq!(
            LongHeader::decode(&mut slice),
            Err(WireError::FixedBitUnset)
        );
    }

    #[test]
    fn version_negotiation_exempt_from_fixed_bit() {
        // Long form, fixed bit clear, version 0 — legal VN prefix.
        let mut slice: &[u8] = &[0x80, 0, 0, 0, 0, 0, 0];
        let (hdr, _) = LongHeader::decode(&mut slice).unwrap();
        assert_eq!(hdr.version, Version::Negotiation);
    }

    #[test]
    fn truncation_points() {
        let hdr = sample_long(LongPacketType::Initial);
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 1).unwrap();
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                LongHeader::decode(&mut slice).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn pn_len_bounds_enforced() {
        let hdr = sample_long(LongPacketType::Initial);
        let mut buf = Vec::new();
        assert!(hdr.encode(&mut buf, 0).is_err());
        assert!(hdr.encode(&mut buf, 5).is_err());
    }

    #[test]
    fn short_header_roundtrip() {
        let hdr = ShortHeader {
            dcid: ConnectionId::new(&[9, 9, 9]).unwrap(),
            spin: true,
            key_phase: false,
        };
        let mut buf = Vec::new();
        hdr.encode(&mut buf, 3).unwrap();
        let mut slice = &buf[..];
        let (decoded, first) = ShortHeader::decode(&mut slice, 3).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(LongHeader::pn_len_from_first_byte(first), 3);
    }

    #[test]
    fn short_header_flags() {
        for (spin, key_phase) in [(false, false), (true, false), (false, true), (true, true)] {
            let hdr = ShortHeader {
                dcid: ConnectionId::EMPTY,
                spin,
                key_phase,
            };
            let mut buf = Vec::new();
            hdr.encode(&mut buf, 1).unwrap();
            let mut slice = &buf[..];
            let (decoded, _) = ShortHeader::decode(&mut slice, 0).unwrap();
            assert_eq!(decoded.spin, spin);
            assert_eq!(decoded.key_phase, key_phase);
        }
    }

    #[test]
    fn short_decode_rejects_long_form_and_truncation() {
        let mut long_first: &[u8] = &[0xc0, 1, 2, 3];
        assert!(ShortHeader::decode(&mut long_first, 2).is_err());
        let mut truncated: &[u8] = &[0x40, 1];
        assert!(ShortHeader::decode(&mut truncated, 4).is_err());
        let mut no_fixed: &[u8] = &[0x00, 1, 2];
        assert_eq!(
            ShortHeader::decode(&mut no_fixed, 2),
            Err(WireError::FixedBitUnset)
        );
    }

    #[test]
    fn form_bit_classifier() {
        assert!(Header::is_long(0xc3));
        assert!(!Header::is_long(0x43));
    }

    proptest! {
        #[test]
        fn prop_long_roundtrip(
            ty_bits in 0u8..4,
            dcid in proptest::collection::vec(any::<u8>(), 0..=20),
            scid in proptest::collection::vec(any::<u8>(), 0..=20),
            pn_len in 1usize..=4,
        ) {
            let hdr = LongHeader {
                ty: LongPacketType::from_bits(ty_bits),
                version: Version::V1,
                dcid: ConnectionId::new(&dcid).unwrap(),
                scid: ConnectionId::new(&scid).unwrap(),
            };
            let mut buf = Vec::new();
            hdr.encode(&mut buf, pn_len).unwrap();
            let mut slice = &buf[..];
            let (decoded, first) = LongHeader::decode(&mut slice).unwrap();
            prop_assert_eq!(decoded, hdr);
            prop_assert_eq!(LongHeader::pn_len_from_first_byte(first), pn_len);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut slice = &data[..];
            let _ = LongHeader::decode(&mut slice);
            let mut slice = &data[..];
            let _ = ShortHeader::decode(&mut slice, 8);
        }
    }
}
