//! # quicsand-wire
//!
//! RFC 9000 QUIC wire-format codec used throughout the QUICsand
//! reproduction.
//!
//! The crate implements the subset of QUIC v1 (and the pre-standard drafts
//! observed by the paper: `draft-29` and Facebook's `mvfst-draft-27`) that
//! is visible to a passive observer and that is exercised by the paper's
//! active experiments:
//!
//! * [`varint`] — RFC 9000 §16 variable-length integer encoding.
//! * [`cid`] — connection identifiers (0–20 bytes).
//! * [`version`] — the QUIC version registry, including the
//!   version-negotiation reserved pattern.
//! * [`header`] — long and short packet headers.
//! * [`packet`] — complete packets: Initial, 0-RTT, Handshake, Retry,
//!   Version Negotiation and 1-RTT.
//! * [`frame`] — the frame types needed for handshakes and floods
//!   (PADDING, PING, ACK, CRYPTO, CONNECTION_CLOSE, NEW_CONNECTION_ID,
//!   HANDSHAKE_DONE).
//! * [`tls`] — a structural TLS 1.3 handshake-message model (ClientHello,
//!   ServerHello, EncryptedExtensions, Certificate, Finished) sufficient to
//!   reproduce message sizes and the dissector's "Initial without Client
//!   Hello ⇒ backscatter" heuristic from §6 of the paper.
//! * [`siphash`] — SipHash-2-4, the keyed primitive backing the toy AEAD
//!   and the retry integrity tag (substitution for AES-128-GCM, see
//!   DESIGN.md).
//! * [`crypto`] — toy initial-secret derivation and packet protection
//!   mirroring the *structure* of RFC 9001 (keys derived from the client's
//!   destination connection ID) without real cryptography.
//! * [`token`] / [`retry`] — stateless retry tokens and the retry
//!   integrity tag used by the RETRY resource-exhaustion defence the paper
//!   benchmarks in Table 1.
//! * [`pktnum`] — packet-number truncation and reconstruction
//!   (RFC 9000 §A).
//!
//! Everything round-trips: `decode(encode(x)) == x` is enforced by
//! property tests in every module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cid;
pub mod crypto;
pub mod error;
pub mod frame;
pub mod header;
pub mod packet;
pub mod pktnum;
pub mod retry;
pub mod siphash;
pub mod tls;
pub mod token;
pub mod varint;
pub mod version;

pub use cid::ConnectionId;
pub use error::WireError;
pub use frame::Frame;
pub use header::{Header, LongHeader, LongPacketType, ShortHeader};
pub use packet::{Packet, PacketPayload};
pub use version::Version;

/// The UDP port QUIC (HTTP/3) servers listen on and the paper keys its
/// telescope classification on (§4.1).
pub const QUIC_PORT: u16 = 443;

/// Minimum UDP payload size a client must use for Initial packets
/// (RFC 9000 §14.1). Servers enforce this to bound amplification.
pub const MIN_INITIAL_SIZE: usize = 1200;

/// Maximum amplification factor a server may send to an unverified client
/// address (RFC 9000 §8.1): three times the data received.
pub const ANTI_AMPLIFICATION_FACTOR: usize = 3;
