//! RFC 9000 §16 variable-length integer encoding.
//!
//! QUIC encodes integers in 1, 2, 4 or 8 bytes; the two most significant
//! bits of the first byte carry the length exponent. The usable range is
//! 0..=2^62-1.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut};

/// Largest value representable as a QUIC varint (2^62 - 1).
pub const MAX_VARINT: u64 = (1 << 62) - 1;

/// Returns the number of bytes [`write_varint`] will use for `value`.
///
/// Returns `None` if the value exceeds [`MAX_VARINT`].
pub fn varint_len(value: u64) -> Option<usize> {
    match value {
        0..=0x3f => Some(1),
        0x40..=0x3fff => Some(2),
        0x4000..=0x3fff_ffff => Some(4),
        0x4000_0000..=MAX_VARINT => Some(8),
        _ => None,
    }
}

/// Encodes `value` into `buf` using the minimal-length varint encoding.
///
/// # Errors
/// [`WireError::InvalidValue`] if `value > MAX_VARINT`.
pub fn write_varint<B: BufMut>(buf: &mut B, value: u64) -> WireResult<()> {
    match varint_len(value) {
        Some(1) => {
            debug_assert!(value <= 0x3f, "1-byte varint out of range: {value:#x}");
            buf.put_u8(value as u8)
        }
        Some(2) => {
            debug_assert!(value <= 0x3fff, "2-byte varint out of range: {value:#x}");
            buf.put_u16((value as u16) | 0x4000)
        }
        Some(4) => {
            debug_assert!(
                value <= 0x3fff_ffff,
                "4-byte varint out of range: {value:#x}"
            );
            buf.put_u32((value as u32) | 0x8000_0000)
        }
        Some(8) => {
            debug_assert!(
                value <= MAX_VARINT,
                "8-byte varint out of range: {value:#x}"
            );
            buf.put_u64(value | 0xc000_0000_0000_0000)
        }
        _ => return Err(WireError::InvalidValue { what: "varint" }),
    }
    Ok(())
}

/// Decodes a varint from the front of `buf`, advancing it.
///
/// # Errors
/// [`WireError::UnexpectedEnd`] if `buf` does not hold the complete
/// encoding.
pub fn read_varint<B: Buf>(buf: &mut B) -> WireResult<u64> {
    if buf.remaining() < 1 {
        return Err(WireError::UnexpectedEnd { what: "varint" });
    }
    let first = buf.chunk()[0];
    let len = 1usize << (first >> 6);
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEnd { what: "varint" });
    }
    let value = match len {
        1 => u64::from(buf.get_u8() & 0x3f),
        2 => u64::from(buf.get_u16() & 0x3fff),
        4 => u64::from(buf.get_u32() & 0x3fff_ffff),
        8 => buf.get_u64() & 0x3fff_ffff_ffff_ffff,
        _ => unreachable!("len is 1, 2, 4 or 8"),
    };
    Ok(value)
}

/// Encodes `value` forcing a specific width (`1`, `2`, `4` or `8`).
///
/// QUIC permits non-minimal encodings; senders use them to reserve space
/// (e.g. for the Length field of an Initial packet that is filled in after
/// the payload is known).
///
/// # Errors
/// [`WireError::InvalidValue`] if `value` does not fit in `width` bytes or
/// `width` is not a legal varint width.
pub fn write_varint_with_width<B: BufMut>(buf: &mut B, value: u64, width: usize) -> WireResult<()> {
    let fits = match width {
        1 => value <= 0x3f,
        2 => value <= 0x3fff,
        4 => value <= 0x3fff_ffff,
        8 => value <= MAX_VARINT,
        _ => false,
    };
    if !fits {
        return Err(WireError::InvalidValue {
            what: "varint width",
        });
    }
    match width {
        1 => {
            debug_assert!(value <= 0x3f, "1-byte varint out of range: {value:#x}");
            buf.put_u8(value as u8)
        }
        2 => {
            debug_assert!(value <= 0x3fff, "2-byte varint out of range: {value:#x}");
            buf.put_u16((value as u16) | 0x4000)
        }
        4 => {
            debug_assert!(
                value <= 0x3fff_ffff,
                "4-byte varint out of range: {value:#x}"
            );
            buf.put_u32((value as u32) | 0x8000_0000)
        }
        8 => {
            debug_assert!(
                value <= MAX_VARINT,
                "8-byte varint out of range: {value:#x}"
            );
            buf.put_u64(value | 0xc000_0000_0000_0000)
        }
        _ => unreachable!("validated above"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(value: u64) -> u64 {
        let mut buf = Vec::new();
        write_varint(&mut buf, value).unwrap();
        let mut slice = &buf[..];
        read_varint(&mut slice).unwrap()
    }

    #[test]
    fn rfc9000_appendix_a1_examples() {
        // The four worked examples from RFC 9000 §A.1.
        let cases: &[(u64, &[u8])] = &[
            (
                151_288_809_941_952_652,
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
            ),
            (494_878_333, &[0x9d, 0x7f, 0x3e, 0x7d]),
            (15_293, &[0x7b, 0xbd]),
            (37, &[0x25]),
        ];
        for (value, encoding) in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, *value).unwrap();
            assert_eq!(&buf[..], *encoding, "encoding of {value}");
            let mut slice = *encoding;
            assert_eq!(read_varint(&mut slice).unwrap(), *value);
        }
    }

    #[test]
    fn boundaries() {
        for v in [
            0,
            0x3f,
            0x40,
            0x3fff,
            0x4000,
            0x3fff_ffff,
            0x4000_0000,
            MAX_VARINT,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn lengths_are_minimal() {
        assert_eq!(varint_len(0), Some(1));
        assert_eq!(varint_len(63), Some(1));
        assert_eq!(varint_len(64), Some(2));
        assert_eq!(varint_len(16383), Some(2));
        assert_eq!(varint_len(16384), Some(4));
        assert_eq!(varint_len(MAX_VARINT), Some(8));
        assert_eq!(varint_len(MAX_VARINT + 1), None);
    }

    #[test]
    fn overflow_rejected() {
        let mut buf = Vec::new();
        assert_eq!(
            write_varint(&mut buf, MAX_VARINT + 1),
            Err(WireError::InvalidValue { what: "varint" })
        );
    }

    #[test]
    fn truncated_input_rejected() {
        // Two-byte encoding with only one byte present.
        let mut slice: &[u8] = &[0x7b];
        assert_eq!(
            read_varint(&mut slice),
            Err(WireError::UnexpectedEnd { what: "varint" })
        );
        let mut empty: &[u8] = &[];
        assert!(read_varint(&mut empty).is_err());
    }

    #[test]
    fn forced_width_roundtrips_and_consumes_width() {
        for width in [1usize, 2, 4, 8] {
            let mut buf = Vec::new();
            write_varint_with_width(&mut buf, 17, width).unwrap();
            assert_eq!(buf.len(), width);
            let mut slice = &buf[..];
            assert_eq!(read_varint(&mut slice).unwrap(), 17);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn boundary_values_per_length_class() {
        // Lowest and highest value of each length class, checked against
        // the exact wire encoding, for both the minimal and forced-width
        // encoders. A narrowing bug at any class boundary (value as u8 /
        // u16 / u32) would corrupt exactly these values.
        let classes: &[(u64, u64, usize)] = &[
            (0, 0x3f, 1),
            (0x40, 0x3fff, 2),
            (0x4000, 0x3fff_ffff, 4),
            (0x4000_0000, MAX_VARINT, 8),
        ];
        for &(lo, hi, width) in classes {
            for value in [lo, hi] {
                let mut buf = Vec::new();
                write_varint(&mut buf, value).unwrap();
                assert_eq!(buf.len(), width, "minimal width of {value:#x}");
                // Length-exponent bits, then the value in the low bits.
                let mut expected = vec![0u8; width];
                let tagged = value | ((width.trailing_zeros() as u64) << (8 * width as u64 - 2));
                for (i, byte) in expected.iter_mut().enumerate() {
                    *byte = (tagged >> (8 * (width - 1 - i))) as u8;
                }
                assert_eq!(buf, expected, "wire bytes of {value:#x}");
                let mut slice = &buf[..];
                assert_eq!(read_varint(&mut slice).unwrap(), value);

                let mut forced = Vec::new();
                write_varint_with_width(&mut forced, value, width).unwrap();
                assert_eq!(forced, buf, "forced width {width} of {value:#x}");
            }
            // One past the top of the class no longer fits this width.
            if width < 8 {
                let mut buf = Vec::new();
                assert!(write_varint_with_width(&mut buf, hi + 1, width).is_err());
            }
        }
    }

    #[test]
    fn forced_width_rejects_misfit() {
        let mut buf = Vec::new();
        assert!(write_varint_with_width(&mut buf, 0x40, 1).is_err());
        assert!(write_varint_with_width(&mut buf, 0x4000, 2).is_err());
        assert!(write_varint_with_width(&mut buf, 5, 3).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(value in 0..=MAX_VARINT) {
            prop_assert_eq!(roundtrip(value), value);
        }

        #[test]
        fn prop_encoding_is_minimal_length(value in 0..=MAX_VARINT) {
            let mut buf = Vec::new();
            write_varint(&mut buf, value).unwrap();
            prop_assert_eq!(buf.len(), varint_len(value).unwrap());
        }

        #[test]
        fn prop_first_two_bits_encode_length(value in 0..=MAX_VARINT) {
            let mut buf = Vec::new();
            write_varint(&mut buf, value).unwrap();
            let expected_len = 1usize << (buf[0] >> 6);
            prop_assert_eq!(buf.len(), expected_len);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut slice = &data[..];
            let _ = read_varint(&mut slice);
        }
    }
}
