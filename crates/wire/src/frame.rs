//! QUIC frames (RFC 9000 §19) — the subset exercised by handshakes and
//! by the flood traffic the paper analyzes.
//!
//! The §6 validity analysis of the paper keys on the frame mix inside
//! backscatter (CRYPTO-bearing Initial/Handshake packets plus keep-alive
//! PINGs), so the codec covers: PADDING, PING, ACK, CRYPTO,
//! NEW_CONNECTION_ID, CONNECTION_CLOSE and HANDSHAKE_DONE.

use crate::cid::ConnectionId;
use crate::error::{WireError, WireResult};
use crate::varint::{read_varint, write_varint};
use bytes::{Buf, BufMut, Bytes};

/// Frame type identifiers (RFC 9000 §19, Table 3).
pub mod frame_type {
    /// PADDING frame.
    pub const PADDING: u64 = 0x00;
    /// PING frame.
    pub const PING: u64 = 0x01;
    /// ACK frame (without ECN counts).
    pub const ACK: u64 = 0x02;
    /// CRYPTO frame.
    pub const CRYPTO: u64 = 0x06;
    /// NEW_TOKEN frame.
    pub const NEW_TOKEN: u64 = 0x07;
    /// NEW_CONNECTION_ID frame.
    pub const NEW_CONNECTION_ID: u64 = 0x18;
    /// CONNECTION_CLOSE frame (transport error).
    pub const CONNECTION_CLOSE: u64 = 0x1c;
    /// HANDSHAKE_DONE frame.
    pub const HANDSHAKE_DONE: u64 = 0x1e;
}

/// One contiguous range of acknowledged packet numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRange {
    /// Smallest packet number in the range.
    pub start: u64,
    /// Largest packet number in the range (inclusive).
    pub end: u64,
}

/// A decoded QUIC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A run of PADDING frames, coalesced (each PADDING frame is a single
    /// zero byte; runs are the norm because Initials are padded to
    /// 1200 bytes).
    Padding {
        /// Number of consecutive padding bytes.
        len: usize,
    },
    /// PING — keep-alive; NGINX sends two after a handshake (Table 1).
    Ping,
    /// ACK without ECN counts. Ranges are ordered descending by packet
    /// number, first range contains `largest`.
    Ack {
        /// Largest acknowledged packet number.
        largest: u64,
        /// ACK delay in the sender's microsecond units (already scaled).
        delay: u64,
        /// Acknowledged ranges, descending; must be non-empty.
        ranges: Vec<AckRange>,
    },
    /// CRYPTO — carries TLS handshake bytes at `offset`.
    Crypto {
        /// Offset of this chunk in the CRYPTO stream.
        offset: u64,
        /// The handshake bytes.
        data: Bytes,
    },
    /// NEW_TOKEN — a server-issued token the client may present in a
    /// *future* connection's Initial (RFC 9000 §19.7). This is the
    /// session-resumption hook the paper's §6 points to for
    /// alleviating the RETRY round-trip penalty.
    NewToken {
        /// The opaque token (non-empty).
        token: Bytes,
    },
    /// NEW_CONNECTION_ID — how servers hand out additional CIDs; the
    /// SCID-counting analysis of Fig. 9 observes their effect.
    NewConnectionId {
        /// Sequence number of the issued CID.
        seq: u64,
        /// Retire-prior-to threshold.
        retire_prior_to: u64,
        /// The issued connection ID (1..=20 bytes).
        cid: ConnectionId,
        /// Stateless reset token for the issued CID.
        reset_token: [u8; 16],
    },
    /// CONNECTION_CLOSE with a transport error code.
    ConnectionClose {
        /// Transport error code.
        error_code: u64,
        /// Frame type that triggered the error (0 if unknown).
        frame_type: u64,
        /// Human-readable reason phrase.
        reason: Bytes,
    },
    /// HANDSHAKE_DONE — sent by servers at handshake confirmation.
    HandshakeDone,
}

impl Frame {
    /// Encodes the frame, appending to `buf`.
    ///
    /// # Errors
    /// [`WireError::InvalidValue`] if a field exceeds its varint range or
    /// an ACK frame has no ranges.
    pub fn encode<B: BufMut>(&self, buf: &mut B) -> WireResult<()> {
        match self {
            Frame::Padding { len } => {
                for _ in 0..*len {
                    buf.put_u8(0);
                }
            }
            Frame::Ping => write_varint(buf, frame_type::PING)?,
            Frame::Ack {
                largest,
                delay,
                ranges,
            } => {
                let first = ranges.first().ok_or(WireError::InvalidValue {
                    what: "ack without ranges",
                })?;
                if first.end != *largest || first.start > first.end {
                    return Err(WireError::InvalidValue {
                        what: "ack first range",
                    });
                }
                write_varint(buf, frame_type::ACK)?;
                write_varint(buf, *largest)?;
                write_varint(buf, *delay)?;
                write_varint(buf, (ranges.len() - 1) as u64)?;
                write_varint(buf, first.end - first.start)?;
                let mut prev_start = first.start;
                for range in &ranges[1..] {
                    if range.start > range.end || range.end + 2 > prev_start {
                        return Err(WireError::InvalidValue {
                            what: "ack range ordering",
                        });
                    }
                    // Gap: number of contiguous unacknowledged packets
                    // between ranges, minus one (RFC 9000 §19.3.1).
                    write_varint(buf, prev_start - range.end - 2)?;
                    write_varint(buf, range.end - range.start)?;
                    prev_start = range.start;
                }
            }
            Frame::Crypto { offset, data } => {
                write_varint(buf, frame_type::CRYPTO)?;
                write_varint(buf, *offset)?;
                write_varint(buf, data.len() as u64)?;
                buf.put_slice(data);
            }
            Frame::NewToken { token } => {
                if token.is_empty() {
                    return Err(WireError::InvalidValue {
                        what: "new_token with empty token",
                    });
                }
                write_varint(buf, frame_type::NEW_TOKEN)?;
                write_varint(buf, token.len() as u64)?;
                buf.put_slice(token);
            }
            Frame::NewConnectionId {
                seq,
                retire_prior_to,
                cid,
                reset_token,
            } => {
                if cid.is_empty() {
                    return Err(WireError::InvalidValue {
                        what: "new_connection_id with empty cid",
                    });
                }
                write_varint(buf, frame_type::NEW_CONNECTION_ID)?;
                write_varint(buf, *seq)?;
                write_varint(buf, *retire_prior_to)?;
                cid.encode_with_len(buf);
                buf.put_slice(reset_token);
            }
            Frame::ConnectionClose {
                error_code,
                frame_type: ft,
                reason,
            } => {
                write_varint(buf, frame_type::CONNECTION_CLOSE)?;
                write_varint(buf, *error_code)?;
                write_varint(buf, *ft)?;
                write_varint(buf, reason.len() as u64)?;
                buf.put_slice(reason);
            }
            Frame::HandshakeDone => write_varint(buf, frame_type::HANDSHAKE_DONE)?,
        }
        Ok(())
    }

    /// Decodes a single frame from the front of `buf` (coalescing PADDING
    /// runs into one frame).
    ///
    /// # Errors
    /// [`WireError::UnknownFrameType`] for types outside our subset and
    /// the usual truncation errors.
    pub fn decode<B: Buf>(buf: &mut B) -> WireResult<Frame> {
        let ty = read_varint(buf)?;
        match ty {
            frame_type::PADDING => {
                let mut len = 1usize;
                while buf.remaining() > 0 && buf.chunk()[0] == 0 {
                    buf.advance(1);
                    len += 1;
                }
                Ok(Frame::Padding { len })
            }
            frame_type::PING => Ok(Frame::Ping),
            frame_type::ACK => {
                let largest = read_varint(buf)?;
                let delay = read_varint(buf)?;
                let range_count = read_varint(buf)?;
                let first_len = read_varint(buf)?;
                if first_len > largest {
                    return Err(WireError::InvalidValue {
                        what: "ack first range length",
                    });
                }
                let mut ranges = vec![AckRange {
                    start: largest - first_len,
                    end: largest,
                }];
                if range_count > 1024 {
                    // Defensive cap: a telescope must survive adversarial
                    // inputs without unbounded allocation.
                    return Err(WireError::InvalidValue {
                        what: "ack range count",
                    });
                }
                let mut prev_start = largest - first_len;
                for _ in 0..range_count {
                    let gap = read_varint(buf)?;
                    let len = read_varint(buf)?;
                    let end = prev_start
                        .checked_sub(gap + 2)
                        .ok_or(WireError::InvalidValue { what: "ack gap" })?;
                    let start = end
                        .checked_sub(len)
                        .ok_or(WireError::InvalidValue { what: "ack range" })?;
                    ranges.push(AckRange { start, end });
                    prev_start = start;
                }
                Ok(Frame::Ack {
                    largest,
                    delay,
                    ranges,
                })
            }
            frame_type::CRYPTO => {
                let offset = read_varint(buf)?;
                let len = read_varint(buf)? as usize;
                if buf.remaining() < len {
                    return Err(WireError::LengthOutOfBounds {
                        claimed: len,
                        available: buf.remaining(),
                    });
                }
                let data = buf.copy_to_bytes(len);
                Ok(Frame::Crypto { offset, data })
            }
            frame_type::NEW_TOKEN => {
                let len = read_varint(buf)? as usize;
                if len == 0 {
                    return Err(WireError::InvalidValue {
                        what: "new_token token length",
                    });
                }
                if buf.remaining() < len {
                    return Err(WireError::LengthOutOfBounds {
                        claimed: len,
                        available: buf.remaining(),
                    });
                }
                Ok(Frame::NewToken {
                    token: buf.copy_to_bytes(len),
                })
            }
            frame_type::NEW_CONNECTION_ID => {
                let seq = read_varint(buf)?;
                let retire_prior_to = read_varint(buf)?;
                let cid = ConnectionId::decode_with_len(buf)?;
                if cid.is_empty() {
                    return Err(WireError::InvalidValue {
                        what: "new_connection_id cid length",
                    });
                }
                if buf.remaining() < 16 {
                    return Err(WireError::UnexpectedEnd {
                        what: "stateless reset token",
                    });
                }
                let mut reset_token = [0u8; 16];
                buf.copy_to_slice(&mut reset_token);
                Ok(Frame::NewConnectionId {
                    seq,
                    retire_prior_to,
                    cid,
                    reset_token,
                })
            }
            frame_type::CONNECTION_CLOSE => {
                let error_code = read_varint(buf)?;
                let ft = read_varint(buf)?;
                let len = read_varint(buf)? as usize;
                if buf.remaining() < len {
                    return Err(WireError::LengthOutOfBounds {
                        claimed: len,
                        available: buf.remaining(),
                    });
                }
                let reason = buf.copy_to_bytes(len);
                Ok(Frame::ConnectionClose {
                    error_code,
                    frame_type: ft,
                    reason,
                })
            }
            frame_type::HANDSHAKE_DONE => Ok(Frame::HandshakeDone),
            other => Err(WireError::UnknownFrameType(other)),
        }
    }

    /// Decodes every frame in `buf` until it is exhausted.
    ///
    /// # Errors
    /// Propagates the first decode error.
    pub fn decode_all(mut buf: &[u8]) -> WireResult<Vec<Frame>> {
        let mut frames = Vec::new();
        while !buf.is_empty() {
            frames.push(Frame::decode(&mut buf)?);
        }
        Ok(frames)
    }

    /// Whether this frame is ack-eliciting (RFC 9002 §2): everything but
    /// ACK, PADDING and CONNECTION_CLOSE.
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Ack { .. } | Frame::Padding { .. } | Frame::ConnectionClose { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        frame.encode(&mut buf).unwrap();
        let mut slice = &buf[..];
        let decoded = Frame::decode(&mut slice).unwrap();
        assert!(slice.is_empty(), "decode must consume the whole encoding");
        decoded
    }

    #[test]
    fn ping_and_handshake_done() {
        assert_eq!(roundtrip(&Frame::Ping), Frame::Ping);
        assert_eq!(roundtrip(&Frame::HandshakeDone), Frame::HandshakeDone);
    }

    #[test]
    fn padding_run_coalesces() {
        let frame = Frame::Padding { len: 37 };
        let mut buf = Vec::new();
        frame.encode(&mut buf).unwrap();
        assert_eq!(buf.len(), 37);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn crypto_roundtrip() {
        let frame = Frame::Crypto {
            offset: 1234,
            data: Bytes::from_static(b"client hello bytes"),
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn crypto_length_beyond_buffer_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, frame_type::CRYPTO).unwrap();
        write_varint(&mut buf, 0).unwrap();
        write_varint(&mut buf, 1000).unwrap(); // claims 1000 bytes
        buf.extend_from_slice(b"short");
        let mut slice = &buf[..];
        assert!(matches!(
            Frame::decode(&mut slice),
            Err(WireError::LengthOutOfBounds { claimed: 1000, .. })
        ));
    }

    #[test]
    fn single_range_ack() {
        let frame = Frame::Ack {
            largest: 100,
            delay: 25,
            ranges: vec![AckRange {
                start: 90,
                end: 100,
            }],
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn multi_range_ack() {
        let frame = Frame::Ack {
            largest: 1000,
            delay: 0,
            ranges: vec![
                AckRange {
                    start: 990,
                    end: 1000,
                },
                AckRange {
                    start: 950,
                    end: 960,
                },
                AckRange { start: 0, end: 10 },
            ],
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn ack_without_ranges_rejected_on_encode() {
        let frame = Frame::Ack {
            largest: 5,
            delay: 0,
            ranges: vec![],
        };
        let mut buf = Vec::new();
        assert!(frame.encode(&mut buf).is_err());
    }

    #[test]
    fn ack_with_inconsistent_first_range_rejected() {
        let frame = Frame::Ack {
            largest: 5,
            delay: 0,
            ranges: vec![AckRange { start: 1, end: 4 }],
        };
        let mut buf = Vec::new();
        assert!(frame.encode(&mut buf).is_err());
    }

    #[test]
    fn ack_first_range_underflow_rejected_on_decode() {
        let mut buf = Vec::new();
        write_varint(&mut buf, frame_type::ACK).unwrap();
        write_varint(&mut buf, 5).unwrap(); // largest
        write_varint(&mut buf, 0).unwrap(); // delay
        write_varint(&mut buf, 0).unwrap(); // range count
        write_varint(&mut buf, 9).unwrap(); // first range longer than largest
        let mut slice = &buf[..];
        assert!(Frame::decode(&mut slice).is_err());
    }

    #[test]
    fn new_token_roundtrip() {
        let frame = Frame::NewToken {
            token: Bytes::from_static(b"resume me later"),
        };
        assert_eq!(roundtrip(&frame), frame);
        assert!(frame.is_ack_eliciting());
    }

    #[test]
    fn new_token_empty_rejected_both_ways() {
        let frame = Frame::NewToken {
            token: Bytes::new(),
        };
        let mut buf = Vec::new();
        assert!(frame.encode(&mut buf).is_err());
        // Wire-level zero length is also illegal (RFC 9000 §19.7).
        let mut bad = Vec::new();
        write_varint(&mut bad, frame_type::NEW_TOKEN).unwrap();
        write_varint(&mut bad, 0).unwrap();
        let mut slice = &bad[..];
        assert!(Frame::decode(&mut slice).is_err());
    }

    #[test]
    fn new_connection_id_roundtrip() {
        let frame = Frame::NewConnectionId {
            seq: 7,
            retire_prior_to: 3,
            cid: ConnectionId::new(&[1; 8]).unwrap(),
            reset_token: [0xab; 16],
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn new_connection_id_empty_cid_rejected() {
        let frame = Frame::NewConnectionId {
            seq: 0,
            retire_prior_to: 0,
            cid: ConnectionId::EMPTY,
            reset_token: [0; 16],
        };
        let mut buf = Vec::new();
        assert!(frame.encode(&mut buf).is_err());
    }

    #[test]
    fn connection_close_roundtrip() {
        let frame = Frame::ConnectionClose {
            error_code: 0x0a,
            frame_type: 0x06,
            reason: Bytes::from_static(b"PROTOCOL_VIOLATION"),
        };
        assert_eq!(roundtrip(&frame), frame);
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 0x30).unwrap(); // DATAGRAM, not implemented
        let mut slice = &buf[..];
        assert_eq!(
            Frame::decode(&mut slice),
            Err(WireError::UnknownFrameType(0x30))
        );
    }

    #[test]
    fn decode_all_sequences_frames() {
        let mut buf = Vec::new();
        Frame::Ping.encode(&mut buf).unwrap();
        Frame::Crypto {
            offset: 0,
            data: Bytes::from_static(b"abc"),
        }
        .encode(&mut buf)
        .unwrap();
        Frame::Padding { len: 5 }.encode(&mut buf).unwrap();
        let frames = Frame::decode_all(&buf).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], Frame::Ping);
        assert_eq!(frames[2], Frame::Padding { len: 5 });
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::HandshakeDone.is_ack_eliciting());
        assert!(!Frame::Padding { len: 1 }.is_ack_eliciting());
        assert!(!Frame::Ack {
            largest: 0,
            delay: 0,
            ranges: vec![AckRange { start: 0, end: 0 }]
        }
        .is_ack_eliciting());
        assert!(!Frame::ConnectionClose {
            error_code: 0,
            frame_type: 0,
            reason: Bytes::new()
        }
        .is_ack_eliciting());
    }

    proptest! {
        #[test]
        fn prop_crypto_roundtrip(
            offset in 0u64..=1_000_000,
            data in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let frame = Frame::Crypto { offset, data: Bytes::from(data) };
            prop_assert_eq!(roundtrip(&frame), frame);
        }

        #[test]
        fn prop_ack_roundtrip(largest in 1_000u64..1_000_000, seed_ranges in proptest::collection::vec((0u64..100, 1u64..100), 1..8)) {
            // Build strictly descending, non-adjacent ranges below `largest`.
            let mut ranges = Vec::new();
            let mut cursor = largest;
            for (gap, len) in seed_ranges {
                let end = cursor;
                let start = end.saturating_sub(len);
                ranges.push(AckRange { start, end });
                if start < gap + 2 + 1 {
                    break;
                }
                cursor = start - gap - 2;
            }
            let frame = Frame::Ack { largest, delay: 0, ranges };
            prop_assert_eq!(roundtrip(&frame), frame);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut slice = &data[..];
            let _ = Frame::decode(&mut slice);
            let _ = Frame::decode_all(&data);
        }
    }
}
