//! The QUIC version registry.
//!
//! The paper observes three wire versions in backscatter (§5.2, Fig. 9):
//! IETF `draft-29` (78 % of Google backscatter), Facebook's
//! `mvfst-draft-27` (95 % of Facebook backscatter) and the final QUIC v1.
//! Version Negotiation packets carry version 0, and greased versions use
//! the `0x?a?a?a?a` reserved pattern (RFC 9000 §15).

use crate::error::{WireError, WireResult};
use std::fmt;

/// A QUIC version identifier as carried in long headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Version {
    /// Version Negotiation packets carry the special version 0.
    Negotiation,
    /// QUIC version 1, RFC 9000 (`0x00000001`).
    V1,
    /// QUIC version 2, RFC 9369 (`0x6b3343cf`) — post-2021 deployments
    /// drift toward it while v1 remains on the wire.
    V2,
    /// IETF draft-27 (`0xff00001b`).
    Draft27,
    /// IETF draft-29 (`0xff00001d`) — dominant in Google backscatter.
    Draft29,
    /// Facebook mvfst draft-27 (`0xfaceb002`) — dominant in Facebook
    /// backscatter.
    MvfstDraft27,
    /// A version matching the reserved `0x?a?a?a?a` greasing pattern.
    Grease(u32),
    /// Any other (unknown to us) version number.
    Unknown(u32),
}

impl Version {
    /// Wire value of QUIC v1.
    pub const V1_WIRE: u32 = 0x0000_0001;
    /// Wire value of QUIC v2 (RFC 9369).
    pub const V2_WIRE: u32 = 0x6b33_43cf;
    /// Wire value of IETF draft-27.
    pub const DRAFT27_WIRE: u32 = 0xff00_001b;
    /// Wire value of IETF draft-29.
    pub const DRAFT29_WIRE: u32 = 0xff00_001d;
    /// Wire value of Facebook mvfst draft-27.
    pub const MVFST_D27_WIRE: u32 = 0xface_b002;

    /// Parses a wire value into a version.
    pub fn from_wire(value: u32) -> Self {
        match value {
            0 => Version::Negotiation,
            Self::V1_WIRE => Version::V1,
            Self::V2_WIRE => Version::V2,
            Self::DRAFT27_WIRE => Version::Draft27,
            Self::DRAFT29_WIRE => Version::Draft29,
            Self::MVFST_D27_WIRE => Version::MvfstDraft27,
            v if Self::is_grease_pattern(v) => Version::Grease(v),
            v => Version::Unknown(v),
        }
    }

    /// The 32-bit value placed in the long header.
    pub fn to_wire(self) -> u32 {
        match self {
            Version::Negotiation => 0,
            Version::V1 => Self::V1_WIRE,
            Version::V2 => Self::V2_WIRE,
            Version::Draft27 => Self::DRAFT27_WIRE,
            Version::Draft29 => Self::DRAFT29_WIRE,
            Version::MvfstDraft27 => Self::MVFST_D27_WIRE,
            Version::Grease(v) | Version::Unknown(v) => v,
        }
    }

    /// Whether `value` matches the `0x?a?a?a?a` reserved greasing pattern
    /// (RFC 9000 §15). Such versions are never deployed and force version
    /// negotiation.
    pub fn is_grease_pattern(value: u32) -> bool {
        value != 0 && value & 0x0f0f_0f0f == 0x0a0a_0a0a
    }

    /// Whether a conforming endpoint of this crate can complete a
    /// handshake with this version.
    pub fn is_supported(self) -> bool {
        matches!(
            self,
            Version::V1 | Version::V2 | Version::Draft27 | Version::Draft29 | Version::MvfstDraft27
        )
    }

    /// Validates that this version can appear in a non-negotiation long
    /// header that we want to *generate* (dissection accepts anything).
    pub fn expect_supported(self) -> WireResult<Self> {
        if self.is_supported() {
            Ok(self)
        } else {
            Err(WireError::UnsupportedVersion(self.to_wire()))
        }
    }

    /// The label the paper uses for this version (Fig. 9 legend).
    pub fn label(self) -> String {
        match self {
            Version::Negotiation => "negotiation".to_string(),
            Version::V1 => "v1".to_string(),
            Version::V2 => "v2".to_string(),
            Version::Draft27 => "draft-27".to_string(),
            Version::Draft29 => "draft-29".to_string(),
            Version::MvfstDraft27 => "mvfst-draft-27".to_string(),
            Version::Grease(v) => format!("grease-{v:08x}"),
            Version::Unknown(v) => format!("unknown-{v:08x}"),
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_versions_roundtrip() {
        for v in [
            Version::Negotiation,
            Version::V1,
            Version::V2,
            Version::Draft27,
            Version::Draft29,
            Version::MvfstDraft27,
        ] {
            assert_eq!(Version::from_wire(v.to_wire()), v);
        }
    }

    #[test]
    fn wire_values_match_registry() {
        assert_eq!(Version::V1.to_wire(), 1);
        assert_eq!(Version::V2.to_wire(), 0x6b33_43cf);
        assert_eq!(Version::Draft29.to_wire(), 0xff00_001d);
        assert_eq!(Version::Draft27.to_wire(), 0xff00_001b);
        assert_eq!(Version::MvfstDraft27.to_wire(), 0xface_b002);
    }

    #[test]
    fn grease_pattern_detection() {
        assert!(Version::is_grease_pattern(0x0a0a_0a0a));
        assert!(Version::is_grease_pattern(0x1a2a_3a4a));
        assert!(!Version::is_grease_pattern(0x0000_0001));
        assert!(!Version::is_grease_pattern(0));
        assert!(matches!(
            Version::from_wire(0x5a6a_7a8a),
            Version::Grease(0x5a6a_7a8a)
        ));
    }

    #[test]
    fn support_matrix() {
        assert!(Version::V1.is_supported());
        assert!(Version::V2.is_supported());
        assert!(Version::Draft29.is_supported());
        assert!(Version::MvfstDraft27.is_supported());
        assert!(!Version::Negotiation.is_supported());
        assert!(!Version::Grease(0x0a0a_0a0a).is_supported());
        assert!(!Version::Unknown(0xdead_beef).is_supported());
        assert!(Version::V1.expect_supported().is_ok());
        assert_eq!(
            Version::Unknown(0xdead_beef).expect_supported(),
            Err(WireError::UnsupportedVersion(0xdead_beef))
        );
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(Version::Draft29.label(), "draft-29");
        assert_eq!(Version::V2.label(), "v2");
        assert_eq!(Version::MvfstDraft27.label(), "mvfst-draft-27");
        assert_eq!(Version::V1.to_string(), "v1");
    }

    proptest! {
        #[test]
        fn prop_from_to_wire_roundtrip(value in any::<u32>()) {
            // from_wire . to_wire must be the identity on wire values.
            prop_assert_eq!(Version::from_wire(value).to_wire(), value);
        }

        #[test]
        fn prop_grease_never_classified_unknown(a in 0u32..16, b in 0u32..16, c in 0u32..16, d in 0u32..16) {
            let v = 0x0a0a_0a0a | (a << 28) | (b << 20) | (c << 12) | (d << 4);
            // Construction places 0xa in each low nibble, so this matches
            // the grease pattern and must never be Unknown.
            prop_assert!(!matches!(Version::from_wire(v), Version::Unknown(_)));
        }
    }
}
