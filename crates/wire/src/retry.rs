//! Retry integrity tag (RFC 9001 §5.8 structure).
//!
//! A Retry packet carries a 16-byte tag computed over the *pseudo-packet*
//! — the client's original DCID prepended to the Retry packet itself —
//! under a fixed, published, per-version key. The tag does not provide
//! secrecy; it lets a client discard Retry packets from off-path
//! attackers who never saw the original DCID. We reproduce the
//! construction with SipHash (DESIGN.md §2).

use crate::cid::ConnectionId;
use crate::error::{WireError, WireResult};
use crate::siphash::{siphash24_128, SipKey};
use crate::version::Version;

/// Length of the retry integrity tag.
pub const RETRY_TAG_LEN: usize = 16;

/// The fixed per-version key (public by design, as in RFC 9001).
fn retry_key(version: Version) -> SipKey {
    SipKey {
        k0: 0xbe0c_690b_9f66_575a ^ u64::from(version.to_wire()),
        k1: 0x1e52_89e4_a0fd_8b2c,
    }
}

/// Computes the retry integrity tag for a Retry packet.
///
/// `retry_packet_prefix` is the encoded Retry packet *without* the tag
/// (first byte through the token); `original_dcid` is the DCID from the
/// client's triggering Initial.
pub fn compute_retry_tag(
    version: Version,
    original_dcid: &ConnectionId,
    retry_packet_prefix: &[u8],
) -> [u8; RETRY_TAG_LEN] {
    let mut pseudo = Vec::with_capacity(1 + original_dcid.len() + retry_packet_prefix.len());
    pseudo.push(original_dcid.len() as u8);
    pseudo.extend_from_slice(original_dcid.as_slice());
    pseudo.extend_from_slice(retry_packet_prefix);
    siphash24_128(retry_key(version), &pseudo)
}

/// Verifies the tag of a received Retry packet.
///
/// # Errors
/// [`WireError::RetryIntegrityFailure`] on mismatch.
pub fn verify_retry_tag(
    version: Version,
    original_dcid: &ConnectionId,
    retry_packet_prefix: &[u8],
    tag: &[u8],
) -> WireResult<()> {
    if tag.len() != RETRY_TAG_LEN
        || compute_retry_tag(version, original_dcid, retry_packet_prefix) != tag
    {
        return Err(WireError::RetryIntegrityFailure);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn odcid() -> ConnectionId {
        ConnectionId::new(&[8, 7, 6, 5]).unwrap()
    }

    #[test]
    fn tag_roundtrip() {
        let prefix = b"retry packet bytes";
        let tag = compute_retry_tag(Version::V1, &odcid(), prefix);
        assert!(verify_retry_tag(Version::V1, &odcid(), prefix, &tag).is_ok());
    }

    #[test]
    fn wrong_odcid_fails() {
        // Off-path attacker scenario: without the original DCID the tag
        // cannot be produced.
        let prefix = b"retry packet bytes";
        let tag = compute_retry_tag(Version::V1, &odcid(), prefix);
        let other = ConnectionId::new(&[1, 1, 1, 1]).unwrap();
        assert_eq!(
            verify_retry_tag(Version::V1, &other, prefix, &tag),
            Err(WireError::RetryIntegrityFailure)
        );
    }

    #[test]
    fn wrong_version_fails() {
        let prefix = b"retry packet bytes";
        let tag = compute_retry_tag(Version::V1, &odcid(), prefix);
        assert!(verify_retry_tag(Version::Draft29, &odcid(), prefix, &tag).is_err());
    }

    #[test]
    fn tampered_prefix_fails() {
        let tag = compute_retry_tag(Version::V1, &odcid(), b"retry");
        assert!(verify_retry_tag(Version::V1, &odcid(), b"retrY", &tag).is_err());
    }

    #[test]
    fn short_tag_fails() {
        assert!(verify_retry_tag(Version::V1, &odcid(), b"x", &[0u8; 15]).is_err());
        assert!(verify_retry_tag(Version::V1, &odcid(), b"x", &[]).is_err());
    }
}
