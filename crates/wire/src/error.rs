//! Error type shared by all wire-format codecs.

use std::fmt;

/// Errors produced while encoding or decoding QUIC wire data.
///
/// The dissector in `quicsand-dissect` treats any of these as "not QUIC"
/// (or "malformed QUIC"), mirroring how Wireshark marks packets it cannot
/// dissect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete field could be read.
    UnexpectedEnd {
        /// What was being parsed when the input ran out.
        what: &'static str,
    },
    /// A varint used a reserved or inconsistent encoding.
    InvalidVarint,
    /// A connection ID length field exceeded the 20-byte maximum.
    CidTooLong(usize),
    /// The fixed bit (0x40) required by RFC 9000 §17 was not set.
    FixedBitUnset,
    /// A long-header packet carried an unknown packet type.
    UnknownPacketType(u8),
    /// The version field contained a value we do not implement.
    UnsupportedVersion(u32),
    /// A frame type we do not implement (or a reserved encoding).
    UnknownFrameType(u64),
    /// A field held a value outside its legal range.
    InvalidValue {
        /// Which field was out of range.
        what: &'static str,
    },
    /// A length prefix pointed past the end of the datagram.
    LengthOutOfBounds {
        /// Claimed length.
        claimed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The retry integrity tag did not verify.
    RetryIntegrityFailure,
    /// An AEAD seal/open failed (toy AEAD: tag mismatch).
    AeadFailure,
    /// A retry token failed validation.
    InvalidToken,
    /// TLS handshake message was malformed.
    MalformedTls(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { what } => {
                write!(f, "unexpected end of input while parsing {what}")
            }
            WireError::InvalidVarint => write!(f, "invalid variable-length integer"),
            WireError::CidTooLong(n) => {
                write!(f, "connection id length {n} exceeds 20-byte maximum")
            }
            WireError::FixedBitUnset => write!(f, "fixed bit not set in packet first byte"),
            WireError::UnknownPacketType(t) => write!(f, "unknown long packet type {t:#x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported QUIC version {v:#010x}"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#x}"),
            WireError::InvalidValue { what } => write!(f, "invalid value for {what}"),
            WireError::LengthOutOfBounds { claimed, available } => write!(
                f,
                "length field claims {claimed} bytes but only {available} available"
            ),
            WireError::RetryIntegrityFailure => write!(f, "retry integrity tag mismatch"),
            WireError::AeadFailure => write!(f, "aead authentication failure"),
            WireError::InvalidToken => write!(f, "retry token validation failed"),
            WireError::MalformedTls(what) => write!(f, "malformed tls message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the codec modules.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_humane() {
        let e = WireError::LengthOutOfBounds {
            claimed: 100,
            available: 3,
        };
        assert_eq!(
            e.to_string(),
            "length field claims 100 bytes but only 3 available"
        );
        assert_eq!(
            WireError::UnexpectedEnd { what: "scid" }.to_string(),
            "unexpected end of input while parsing scid"
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(WireError::InvalidVarint, WireError::InvalidVarint);
        assert_ne!(WireError::InvalidVarint, WireError::FixedBitUnset);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(WireError::AeadFailure);
        assert!(e.to_string().contains("aead"));
    }
}
