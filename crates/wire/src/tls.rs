//! Structural TLS 1.3 handshake messages (RFC 8446 framing).
//!
//! QUIC carries the TLS handshake in CRYPTO frames. The paper's analyses
//! depend on TLS only structurally:
//!
//! * message *sizes* drive the amplification accounting (client Initials
//!   padded to ≥1200 bytes; server replies ≈ certificate chain size,
//!   §3 "reflective amplification attacks"),
//! * the §6 backscatter-validity check keys on "Initial messages that do
//!   not contain an (unencrypted) TLS Client Hello",
//! * RETRY (Table 1) needs the ClientHello to be replayable.
//!
//! The module therefore implements RFC 8446 handshake *framing* —
//! `msg_type(1) || length(24) || body` with real extension encodings for
//! SNI, ALPN, supported_versions and key_share — around opaque random and
//! key material. No actual key exchange is performed; see DESIGN.md §2.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut, Bytes};

/// TLS handshake message types we model (RFC 8446 §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakeType {
    /// ClientHello (1).
    ClientHello,
    /// ServerHello (2).
    ServerHello,
    /// EncryptedExtensions (8).
    EncryptedExtensions,
    /// Certificate (11).
    Certificate,
    /// CertificateVerify (15).
    CertificateVerify,
    /// Finished (20).
    Finished,
}

impl HandshakeType {
    /// The wire code point.
    pub fn code(self) -> u8 {
        match self {
            HandshakeType::ClientHello => 1,
            HandshakeType::ServerHello => 2,
            HandshakeType::EncryptedExtensions => 8,
            HandshakeType::Certificate => 11,
            HandshakeType::CertificateVerify => 15,
            HandshakeType::Finished => 20,
        }
    }

    /// Parses a wire code point.
    pub fn from_code(code: u8) -> WireResult<Self> {
        Ok(match code {
            1 => HandshakeType::ClientHello,
            2 => HandshakeType::ServerHello,
            8 => HandshakeType::EncryptedExtensions,
            11 => HandshakeType::Certificate,
            15 => HandshakeType::CertificateVerify,
            20 => HandshakeType::Finished,
            _ => return Err(WireError::MalformedTls("unknown handshake type")),
        })
    }
}

/// TLS extension code points used in the model.
mod ext {
    pub const SERVER_NAME: u16 = 0;
    pub const ALPN: u16 = 16;
    pub const SUPPORTED_VERSIONS: u16 = 43;
    pub const KEY_SHARE: u16 = 51;
}

/// TLS 1.3 cipher suites (RFC 8446 §B.4).
pub mod cipher_suite {
    /// TLS_AES_128_GCM_SHA256.
    pub const AES_128_GCM_SHA256: u16 = 0x1301;
    /// TLS_AES_256_GCM_SHA384.
    pub const AES_256_GCM_SHA384: u16 = 0x1302;
    /// TLS_CHACHA20_POLY1305_SHA256.
    pub const CHACHA20_POLY1305_SHA256: u16 = 0x1303;
}

/// A structural TLS 1.3 ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// 32 bytes of client randomness.
    pub random: [u8; 32],
    /// Offered cipher suites (non-empty).
    pub cipher_suites: Vec<u16>,
    /// Server name indication, e.g. `www.google.com`.
    pub server_name: Option<String>,
    /// ALPN protocols, e.g. `h3`, `h3-29`.
    pub alpn: Vec<String>,
    /// Opaque X25519-like key share (32 bytes in practice).
    pub key_share: Bytes,
}

impl ClientHello {
    /// Encodes the full handshake message (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(256);
        body.put_u16(0x0303); // legacy_version = TLS 1.2
        body.put_slice(&self.random);
        body.put_u8(0); // empty legacy_session_id
        body.put_u16((self.cipher_suites.len() * 2) as u16);
        for cs in &self.cipher_suites {
            body.put_u16(*cs);
        }
        body.put_u8(1); // legacy_compression_methods
        body.put_u8(0); // null compression

        let mut exts = Vec::with_capacity(128);
        if let Some(name) = &self.server_name {
            let mut data = Vec::with_capacity(name.len() + 5);
            data.put_u16((name.len() + 3) as u16); // server_name_list length
            data.put_u8(0); // name_type host_name
            data.put_u16(name.len() as u16);
            data.put_slice(name.as_bytes());
            put_extension(&mut exts, ext::SERVER_NAME, &data);
        }
        if !self.alpn.is_empty() {
            let mut list = Vec::new();
            for proto in &self.alpn {
                list.put_u8(proto.len() as u8);
                list.put_slice(proto.as_bytes());
            }
            let mut data = Vec::with_capacity(list.len() + 2);
            data.put_u16(list.len() as u16);
            data.put_slice(&list);
            put_extension(&mut exts, ext::ALPN, &data);
        }
        // supported_versions: TLS 1.3 only.
        put_extension(&mut exts, ext::SUPPORTED_VERSIONS, &[2, 0x03, 0x04]);
        // key_share: one entry, group x25519 (0x001d).
        let mut ks = Vec::with_capacity(self.key_share.len() + 6);
        ks.put_u16((self.key_share.len() + 4) as u16);
        ks.put_u16(0x001d);
        ks.put_u16(self.key_share.len() as u16);
        ks.put_slice(&self.key_share);
        put_extension(&mut exts, ext::KEY_SHARE, &ks);

        body.put_u16(exts.len() as u16);
        body.put_slice(&exts);

        frame_handshake(HandshakeType::ClientHello, &body)
    }

    /// Decodes a ClientHello from a full handshake message.
    ///
    /// # Errors
    /// [`WireError::MalformedTls`] describing the first malformation.
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        let (ty, mut body) = unframe_handshake(data)?;
        if ty != HandshakeType::ClientHello {
            return Err(WireError::MalformedTls("not a client hello"));
        }
        if body.remaining() < 2 + 32 + 1 {
            return Err(WireError::MalformedTls("client hello too short"));
        }
        let _legacy_version = body.get_u16();
        let mut random = [0u8; 32];
        body.copy_to_slice(&mut random);
        let session_len = body.get_u8() as usize;
        if body.remaining() < session_len {
            return Err(WireError::MalformedTls("session id truncated"));
        }
        body.advance(session_len);
        if body.remaining() < 2 {
            return Err(WireError::MalformedTls("cipher suites length"));
        }
        let cs_len = body.get_u16() as usize;
        if !cs_len.is_multiple_of(2) || body.remaining() < cs_len || cs_len == 0 {
            return Err(WireError::MalformedTls("cipher suites"));
        }
        let mut cipher_suites = Vec::with_capacity(cs_len / 2);
        for _ in 0..cs_len / 2 {
            cipher_suites.push(body.get_u16());
        }
        if body.remaining() < 1 {
            return Err(WireError::MalformedTls("compression methods"));
        }
        let comp_len = body.get_u8() as usize;
        if body.remaining() < comp_len {
            return Err(WireError::MalformedTls("compression methods truncated"));
        }
        body.advance(comp_len);

        let mut server_name = None;
        let mut alpn = Vec::new();
        let mut key_share = Bytes::new();
        for_each_extension(&mut body, |ext_ty, mut data| {
            match ext_ty {
                ext::SERVER_NAME => {
                    if data.remaining() < 5 {
                        return Err(WireError::MalformedTls("sni"));
                    }
                    let _list_len = data.get_u16();
                    let _name_type = data.get_u8();
                    let name_len = data.get_u16() as usize;
                    if data.remaining() < name_len {
                        return Err(WireError::MalformedTls("sni name"));
                    }
                    let name_bytes = data.copy_to_bytes(name_len);
                    server_name = Some(
                        String::from_utf8(name_bytes.to_vec())
                            .map_err(|_| WireError::MalformedTls("sni utf8"))?,
                    );
                }
                ext::ALPN => {
                    if data.remaining() < 2 {
                        return Err(WireError::MalformedTls("alpn"));
                    }
                    let list_len = data.get_u16() as usize;
                    if data.remaining() < list_len {
                        return Err(WireError::MalformedTls("alpn list"));
                    }
                    let mut list = data.copy_to_bytes(list_len);
                    while list.remaining() > 0 {
                        let len = list.get_u8() as usize;
                        if list.remaining() < len {
                            return Err(WireError::MalformedTls("alpn entry"));
                        }
                        let proto = list.copy_to_bytes(len);
                        alpn.push(
                            String::from_utf8(proto.to_vec())
                                .map_err(|_| WireError::MalformedTls("alpn utf8"))?,
                        );
                    }
                }
                ext::KEY_SHARE => {
                    if data.remaining() < 6 {
                        return Err(WireError::MalformedTls("key share"));
                    }
                    let _list_len = data.get_u16();
                    let _group = data.get_u16();
                    let key_len = data.get_u16() as usize;
                    if data.remaining() < key_len {
                        return Err(WireError::MalformedTls("key share data"));
                    }
                    key_share = data.copy_to_bytes(key_len);
                }
                _ => {}
            }
            Ok(())
        })?;

        Ok(ClientHello {
            random,
            cipher_suites,
            server_name,
            alpn,
            key_share,
        })
    }
}

/// A structural TLS 1.3 ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// 32 bytes of server randomness.
    pub random: [u8; 32],
    /// The selected cipher suite.
    pub cipher_suite: u16,
    /// The server's key share.
    pub key_share: Bytes,
}

impl ServerHello {
    /// Encodes the full handshake message.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(128);
        body.put_u16(0x0303);
        body.put_slice(&self.random);
        body.put_u8(0); // empty legacy_session_id_echo
        body.put_u16(self.cipher_suite);
        body.put_u8(0); // legacy_compression_method

        let mut exts = Vec::with_capacity(64);
        put_extension(&mut exts, ext::SUPPORTED_VERSIONS, &[0x03, 0x04]);
        let mut ks = Vec::with_capacity(self.key_share.len() + 4);
        ks.put_u16(0x001d);
        ks.put_u16(self.key_share.len() as u16);
        ks.put_slice(&self.key_share);
        put_extension(&mut exts, ext::KEY_SHARE, &ks);

        body.put_u16(exts.len() as u16);
        body.put_slice(&exts);
        frame_handshake(HandshakeType::ServerHello, &body)
    }

    /// Decodes a ServerHello from a full handshake message.
    ///
    /// # Errors
    /// [`WireError::MalformedTls`] on malformation.
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        let (ty, mut body) = unframe_handshake(data)?;
        if ty != HandshakeType::ServerHello {
            return Err(WireError::MalformedTls("not a server hello"));
        }
        if body.remaining() < 2 + 32 + 1 {
            return Err(WireError::MalformedTls("server hello too short"));
        }
        let _legacy_version = body.get_u16();
        let mut random = [0u8; 32];
        body.copy_to_slice(&mut random);
        let session_len = body.get_u8() as usize;
        if body.remaining() < session_len + 3 {
            return Err(WireError::MalformedTls("server hello truncated"));
        }
        body.advance(session_len);
        let cipher_suite = body.get_u16();
        let _compression = body.get_u8();

        let mut key_share = Bytes::new();
        for_each_extension(&mut body, |ext_ty, mut data| {
            if ext_ty == ext::KEY_SHARE {
                if data.remaining() < 4 {
                    return Err(WireError::MalformedTls("key share"));
                }
                let _group = data.get_u16();
                let key_len = data.get_u16() as usize;
                if data.remaining() < key_len {
                    return Err(WireError::MalformedTls("key share data"));
                }
                key_share = data.copy_to_bytes(key_len);
            }
            Ok(())
        })?;

        Ok(ServerHello {
            random,
            cipher_suite,
            key_share,
        })
    }
}

/// A certificate chain: opaque DER blobs. The sizes matter (they set the
/// server's Initial+Handshake flight size and hence the 3× amplification
/// headroom); the contents do not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certificate entries, leaf first.
    pub chain: Vec<Bytes>,
}

impl Certificate {
    /// Encodes the full handshake message (RFC 8446 §4.4.2, without
    /// per-entry extensions).
    pub fn encode(&self) -> Vec<u8> {
        let mut list = Vec::new();
        for cert in &self.chain {
            put_u24(&mut list, cert.len() as u32);
            list.put_slice(cert);
            list.put_u16(0); // no extensions
        }
        let mut body = Vec::with_capacity(list.len() + 8);
        body.put_u8(0); // empty certificate_request_context
        put_u24(&mut body, list.len() as u32);
        body.put_slice(&list);
        frame_handshake(HandshakeType::Certificate, &body)
    }

    /// Decodes a Certificate message.
    ///
    /// # Errors
    /// [`WireError::MalformedTls`] on malformation.
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        let (ty, mut body) = unframe_handshake(data)?;
        if ty != HandshakeType::Certificate {
            return Err(WireError::MalformedTls("not a certificate"));
        }
        if body.remaining() < 4 {
            return Err(WireError::MalformedTls("certificate too short"));
        }
        let ctx_len = body.get_u8() as usize;
        if body.remaining() < ctx_len {
            return Err(WireError::MalformedTls("certificate context"));
        }
        body.advance(ctx_len);
        let list_len = get_u24(&mut body)? as usize;
        if body.remaining() < list_len {
            return Err(WireError::MalformedTls("certificate list"));
        }
        let mut list = body.copy_to_bytes(list_len);
        let mut chain = Vec::new();
        while list.remaining() > 0 {
            let cert_len = get_u24(&mut list)? as usize;
            if list.remaining() < cert_len {
                return Err(WireError::MalformedTls("certificate entry"));
            }
            chain.push(list.copy_to_bytes(cert_len));
            if list.remaining() < 2 {
                return Err(WireError::MalformedTls("certificate extensions"));
            }
            let ext_len = list.get_u16() as usize;
            if list.remaining() < ext_len {
                return Err(WireError::MalformedTls("certificate extensions data"));
            }
            list.advance(ext_len);
        }
        Ok(Certificate { chain })
    }
}

/// A Finished message: opaque verify data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// HMAC over the transcript (32 bytes for SHA-256 suites).
    pub verify_data: Bytes,
}

impl Finished {
    /// Encodes the full handshake message.
    pub fn encode(&self) -> Vec<u8> {
        frame_handshake(HandshakeType::Finished, &self.verify_data)
    }

    /// Decodes a Finished message.
    ///
    /// # Errors
    /// [`WireError::MalformedTls`] on malformation.
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        let (ty, body) = unframe_handshake(data)?;
        if ty != HandshakeType::Finished {
            return Err(WireError::MalformedTls("not finished"));
        }
        Ok(Finished {
            verify_data: Bytes::copy_from_slice(body),
        })
    }
}

/// Returns the handshake type of a framed message without full decoding —
/// this is what the dissector uses for the §6 "Initial without a Client
/// Hello" heuristic.
pub fn peek_handshake_type(data: &[u8]) -> WireResult<HandshakeType> {
    if data.len() < 4 {
        return Err(WireError::MalformedTls("handshake header"));
    }
    HandshakeType::from_code(data[0])
}

fn frame_handshake(ty: HandshakeType, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.put_u8(ty.code());
    put_u24(&mut out, body.len() as u32);
    out.put_slice(body);
    out
}

fn unframe_handshake(data: &[u8]) -> WireResult<(HandshakeType, &[u8])> {
    if data.len() < 4 {
        return Err(WireError::MalformedTls("handshake header"));
    }
    let ty = HandshakeType::from_code(data[0])?;
    let len = ((data[1] as usize) << 16) | ((data[2] as usize) << 8) | data[3] as usize;
    if data.len() < 4 + len {
        return Err(WireError::MalformedTls("handshake body truncated"));
    }
    Ok((ty, &data[4..4 + len]))
}

fn put_u24(buf: &mut Vec<u8>, value: u32) {
    buf.push((value >> 16) as u8);
    buf.push((value >> 8) as u8);
    buf.push(value as u8);
}

fn get_u24<B: Buf>(buf: &mut B) -> WireResult<u32> {
    if buf.remaining() < 3 {
        return Err(WireError::MalformedTls("u24"));
    }
    Ok(((buf.get_u8() as u32) << 16) | ((buf.get_u8() as u32) << 8) | buf.get_u8() as u32)
}

fn put_extension(buf: &mut Vec<u8>, ty: u16, data: &[u8]) {
    buf.put_u16(ty);
    buf.put_u16(data.len() as u16);
    buf.put_slice(data);
}

fn for_each_extension<B, F>(body: &mut B, mut f: F) -> WireResult<()>
where
    B: Buf,
    F: FnMut(u16, Bytes) -> WireResult<()>,
{
    if body.remaining() < 2 {
        return Err(WireError::MalformedTls("extensions length"));
    }
    let total = body.get_u16() as usize;
    if body.remaining() < total {
        return Err(WireError::MalformedTls("extensions truncated"));
    }
    let mut exts = body.copy_to_bytes(total);
    while exts.remaining() > 0 {
        if exts.remaining() < 4 {
            return Err(WireError::MalformedTls("extension header"));
        }
        let ty = exts.get_u16();
        let len = exts.get_u16() as usize;
        if exts.remaining() < len {
            return Err(WireError::MalformedTls("extension data"));
        }
        let data = exts.copy_to_bytes(len);
        f(ty, data)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_client_hello() -> ClientHello {
        ClientHello {
            random: [7u8; 32],
            cipher_suites: vec![
                cipher_suite::AES_128_GCM_SHA256,
                cipher_suite::CHACHA20_POLY1305_SHA256,
            ],
            server_name: Some("www.google.com".to_string()),
            alpn: vec!["h3".to_string(), "h3-29".to_string()],
            key_share: Bytes::from_static(&[0xaa; 32]),
        }
    }

    #[test]
    fn client_hello_roundtrip() {
        let ch = sample_client_hello();
        let encoded = ch.encode();
        assert_eq!(ClientHello::decode(&encoded).unwrap(), ch);
    }

    #[test]
    fn client_hello_without_optional_fields() {
        let ch = ClientHello {
            random: [0u8; 32],
            cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
            server_name: None,
            alpn: vec![],
            key_share: Bytes::new(),
        };
        let encoded = ch.encode();
        assert_eq!(ClientHello::decode(&encoded).unwrap(), ch);
    }

    #[test]
    fn server_hello_roundtrip() {
        let sh = ServerHello {
            random: [3u8; 32],
            cipher_suite: cipher_suite::AES_256_GCM_SHA384,
            key_share: Bytes::from_static(&[0xbb; 32]),
        };
        let encoded = sh.encode();
        assert_eq!(ServerHello::decode(&encoded).unwrap(), sh);
    }

    #[test]
    fn certificate_roundtrip_and_size_dominates() {
        let cert = Certificate {
            chain: vec![Bytes::from(vec![1u8; 1200]), Bytes::from(vec![2u8; 900])],
        };
        let encoded = cert.encode();
        assert!(encoded.len() > 2100, "chain bytes dominate the encoding");
        assert_eq!(Certificate::decode(&encoded).unwrap(), cert);
    }

    #[test]
    fn empty_certificate_chain() {
        let cert = Certificate { chain: vec![] };
        let encoded = cert.encode();
        assert_eq!(Certificate::decode(&encoded).unwrap(), cert);
    }

    #[test]
    fn finished_roundtrip() {
        let fin = Finished {
            verify_data: Bytes::from_static(&[9u8; 32]),
        };
        assert_eq!(Finished::decode(&fin.encode()).unwrap(), fin);
    }

    #[test]
    fn peek_type_distinguishes_hellos() {
        assert_eq!(
            peek_handshake_type(&sample_client_hello().encode()).unwrap(),
            HandshakeType::ClientHello
        );
        let sh = ServerHello {
            random: [0; 32],
            cipher_suite: cipher_suite::AES_128_GCM_SHA256,
            key_share: Bytes::new(),
        };
        assert_eq!(
            peek_handshake_type(&sh.encode()).unwrap(),
            HandshakeType::ServerHello
        );
    }

    #[test]
    fn cross_type_decode_rejected() {
        let ch = sample_client_hello().encode();
        assert!(ServerHello::decode(&ch).is_err());
        assert!(Certificate::decode(&ch).is_err());
        assert!(Finished::decode(&ch).is_err());
    }

    #[test]
    fn truncated_messages_rejected() {
        let encoded = sample_client_hello().encode();
        for cut in [0, 1, 3, 10, encoded.len() - 1] {
            assert!(
                ClientHello::decode(&encoded[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn handshake_type_codes() {
        for ty in [
            HandshakeType::ClientHello,
            HandshakeType::ServerHello,
            HandshakeType::EncryptedExtensions,
            HandshakeType::Certificate,
            HandshakeType::CertificateVerify,
            HandshakeType::Finished,
        ] {
            assert_eq!(HandshakeType::from_code(ty.code()).unwrap(), ty);
        }
        assert!(HandshakeType::from_code(99).is_err());
    }

    proptest! {
        #[test]
        fn prop_client_hello_roundtrip(
            random in any::<[u8; 32]>(),
            n_suites in 1usize..5,
            sni in proptest::option::of("[a-z]{1,20}\\.[a-z]{2,5}"),
            key in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let ch = ClientHello {
                random,
                cipher_suites: (0..n_suites).map(|i| 0x1301 + i as u16).collect(),
                server_name: sni,
                alpn: vec!["h3".to_string()],
                key_share: Bytes::from(key),
            };
            prop_assert_eq!(ClientHello::decode(&ch.encode()).unwrap(), ch);
        }

        #[test]
        fn prop_certificate_roundtrip(
            sizes in proptest::collection::vec(0usize..2000, 0..4),
        ) {
            let cert = Certificate {
                chain: sizes.iter().map(|&s| Bytes::from(vec![0x5a; s])).collect(),
            };
            prop_assert_eq!(Certificate::decode(&cert.encode()).unwrap(), cert);
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ClientHello::decode(&data);
            let _ = ServerHello::decode(&data);
            let _ = Certificate::decode(&data);
            let _ = Finished::decode(&data);
            let _ = peek_handshake_type(&data);
        }
    }
}
