//! QUIC connection identifiers (RFC 9000 §5.1).
//!
//! Connection IDs are 0–20 byte opaque values. The paper uses the *source*
//! connection ID (SCID) observed in backscatter as a proxy for server-side
//! state allocation (Fig. 9), so the type is `Ord + Hash` and cheap to
//! copy.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut};
use std::fmt;

/// Maximum connection ID length in QUIC v1 (RFC 9000 §17.2).
pub const MAX_CID_LEN: usize = 20;

/// A QUIC connection identifier: an opaque byte string of 0..=20 bytes.
///
/// Stored inline to keep packet metadata allocation-free; the telescope
/// pipeline creates millions of these.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionId {
    len: u8,
    bytes: [u8; MAX_CID_LEN],
}

impl ConnectionId {
    /// The zero-length connection ID.
    ///
    /// Backscatter observed by the telescope carries DCID length 0 (the
    /// attacker never echoed a server-chosen CID), which §5.2 of the paper
    /// uses as a validity check.
    pub const EMPTY: ConnectionId = ConnectionId {
        len: 0,
        bytes: [0; MAX_CID_LEN],
    };

    /// Creates a connection ID from a slice.
    ///
    /// # Errors
    /// [`WireError::CidTooLong`] if `data.len() > 20`.
    pub fn new(data: &[u8]) -> WireResult<Self> {
        if data.len() > MAX_CID_LEN {
            return Err(WireError::CidTooLong(data.len()));
        }
        let mut bytes = [0u8; MAX_CID_LEN];
        bytes[..data.len()].copy_from_slice(data);
        Ok(ConnectionId {
            len: data.len() as u8,
            bytes,
        })
    }

    /// Builds a connection ID from a `u64`, producing the 8-byte
    /// big-endian representation. Handy for deterministic test fixtures
    /// and for the traffic generator's sequential SCID allocation.
    pub fn from_u64(value: u64) -> Self {
        Self::new(&value.to_be_bytes()).expect("8 <= 20")
    }

    /// The identifier bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Length in bytes (0..=20).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this is the zero-length connection ID.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `len || bytes` (the long-header representation).
    pub fn encode_with_len<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.len);
        buf.put_slice(self.as_slice());
    }

    /// Reads `len || bytes` as written by [`encode_with_len`].
    ///
    /// [`encode_with_len`]: ConnectionId::encode_with_len
    ///
    /// # Errors
    /// [`WireError::CidTooLong`] for lengths above 20,
    /// [`WireError::UnexpectedEnd`] on truncated input.
    pub fn decode_with_len<B: Buf>(buf: &mut B) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::UnexpectedEnd { what: "cid length" });
        }
        let len = buf.get_u8() as usize;
        if len > MAX_CID_LEN {
            return Err(WireError::CidTooLong(len));
        }
        if buf.remaining() < len {
            return Err(WireError::UnexpectedEnd { what: "cid bytes" });
        }
        let mut bytes = [0u8; MAX_CID_LEN];
        buf.copy_to_slice(&mut bytes[..len]);
        Ok(ConnectionId {
            len: len as u8,
            bytes,
        })
    }
}

impl ConnectionId {
    fn fmt_hex(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "cid:empty");
        }
        write!(f, "cid:")?;
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_hex(f)
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_hex(f)
    }
}

impl serde::Serialize for ConnectionId {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_bytes(self.as_slice())
    }
}

impl<'de> serde::Deserialize<'de> for ConnectionId {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let v: Vec<u8> = serde::Deserialize::deserialize(de)?;
        ConnectionId::new(&v)
            .map_err(|_| serde::de::Error::invalid_length(v.len(), &"at most 20 bytes"))
    }
}

impl AsRef<[u8]> for ConnectionId {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for ConnectionId {
    fn default() -> Self {
        Self::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let cid = ConnectionId::new(&[1, 2, 3]).unwrap();
        assert_eq!(cid.len(), 3);
        assert!(!cid.is_empty());
        assert_eq!(cid.as_slice(), &[1, 2, 3]);
        assert_eq!(cid.as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn empty_cid() {
        assert_eq!(ConnectionId::EMPTY.len(), 0);
        assert!(ConnectionId::EMPTY.is_empty());
        assert_eq!(ConnectionId::default(), ConnectionId::EMPTY);
        assert_eq!(ConnectionId::EMPTY.to_string(), "cid:empty");
    }

    #[test]
    fn max_length_accepted_21_rejected() {
        assert!(ConnectionId::new(&[0u8; 20]).is_ok());
        assert_eq!(
            ConnectionId::new(&[0u8; 21]),
            Err(WireError::CidTooLong(21))
        );
    }

    #[test]
    fn from_u64_is_big_endian() {
        let cid = ConnectionId::from_u64(0x0102_0304_0506_0708);
        assert_eq!(cid.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn display_renders_hex() {
        let cid = ConnectionId::new(&[0xde, 0xad]).unwrap();
        assert_eq!(cid.to_string(), "cid:dead");
        assert_eq!(format!("{cid:?}"), "cid:dead");
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let cid = ConnectionId::new(&[9, 8, 7, 6]).unwrap();
        let mut buf = Vec::new();
        cid.encode_with_len(&mut buf);
        assert_eq!(buf, vec![4, 9, 8, 7, 6]);
        let mut slice = &buf[..];
        assert_eq!(ConnectionId::decode_with_len(&mut slice).unwrap(), cid);
        assert!(slice.is_empty());
    }

    #[test]
    fn decode_rejects_oversized_length_byte() {
        let mut slice: &[u8] = &[21, 0, 0];
        assert_eq!(
            ConnectionId::decode_with_len(&mut slice),
            Err(WireError::CidTooLong(21))
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut slice: &[u8] = &[4, 1, 2];
        assert!(matches!(
            ConnectionId::decode_with_len(&mut slice),
            Err(WireError::UnexpectedEnd { .. })
        ));
        let mut empty: &[u8] = &[];
        assert!(ConnectionId::decode_with_len(&mut empty).is_err());
    }

    #[test]
    fn equality_ignores_slack_bytes() {
        // Two CIDs with identical prefixes but built from different
        // backing arrays must compare equal.
        let a = ConnectionId::new(&[1, 2]).unwrap();
        let longer = ConnectionId::new(&[1, 2, 3]).unwrap();
        let b = ConnectionId::new(&longer.as_slice()[..2]).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..=20)) {
            let cid = ConnectionId::new(&data).unwrap();
            let mut buf = Vec::new();
            cid.encode_with_len(&mut buf);
            let mut slice = &buf[..];
            let back = ConnectionId::decode_with_len(&mut slice).unwrap();
            prop_assert_eq!(cid, back);
            prop_assert_eq!(back.as_slice(), &data[..]);
        }

        #[test]
        fn prop_ordering_matches_byte_ordering(
            a in proptest::collection::vec(any::<u8>(), 0..=20),
            b in proptest::collection::vec(any::<u8>(), 0..=20),
        ) {
            let ca = ConnectionId::new(&a).unwrap();
            let cb = ConnectionId::new(&b).unwrap();
            // Equal slices must produce equal CIDs; inequality must be
            // consistent with slice equality.
            prop_assert_eq!(ca == cb, a == b);
        }
    }
}
