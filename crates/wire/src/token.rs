//! Stateless retry tokens (RFC 9000 §8.1.2 structure).
//!
//! A RETRY-capable server must validate client addresses without keeping
//! state — the entire point of the defence benchmarked in Table 1 of the
//! paper. The token therefore encodes everything the server needs to
//! resume: the client address, the original DCID (required to re-derive
//! Initial keys and to prove the retry round-trip happened) and an issue
//! timestamp, authenticated under a server-local key.
//!
//! Layout: `issued_at(8) || client_ip(4) || odcid_len(1) || odcid || tag(16)`.

use crate::cid::ConnectionId;
use crate::error::{WireError, WireResult};
use crate::siphash::{siphash24_128, SipKey};

/// Tag length appended to tokens.
pub const TOKEN_TAG_LEN: usize = 16;

/// Default token lifetime used by [`TokenMinter::validate`], in
/// simulation seconds. Real deployments use similar small windows.
pub const DEFAULT_TOKEN_LIFETIME_SECS: u64 = 30;

/// A decoded, validated retry token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryTokenClaims {
    /// When the token was issued (simulation seconds).
    pub issued_at: u64,
    /// The client IPv4 address the token was minted for.
    pub client_ip: u32,
    /// The original DCID from the client's first Initial.
    pub original_dcid: ConnectionId,
}

/// Mints and validates stateless retry tokens under a server-local key.
#[derive(Debug, Clone, Copy)]
pub struct TokenMinter {
    key: SipKey,
    lifetime_secs: u64,
}

impl TokenMinter {
    /// Creates a minter with the given key and the default lifetime.
    pub fn new(key: SipKey) -> Self {
        TokenMinter {
            key,
            lifetime_secs: DEFAULT_TOKEN_LIFETIME_SECS,
        }
    }

    /// Overrides the token lifetime.
    pub fn with_lifetime(mut self, secs: u64) -> Self {
        self.lifetime_secs = secs;
        self
    }

    /// Mints a token binding `client_ip` and `original_dcid` at time
    /// `now` (simulation seconds).
    pub fn mint(&self, now: u64, client_ip: u32, original_dcid: &ConnectionId) -> Vec<u8> {
        let mut token = Vec::with_capacity(13 + original_dcid.len() + TOKEN_TAG_LEN);
        token.extend_from_slice(&now.to_le_bytes());
        token.extend_from_slice(&client_ip.to_le_bytes());
        token.push(original_dcid.len() as u8);
        token.extend_from_slice(original_dcid.as_slice());
        let tag = siphash24_128(self.key, &token);
        token.extend_from_slice(&tag);
        token
    }

    /// Validates a token presented by `client_ip` at time `now`.
    ///
    /// # Errors
    /// [`WireError::InvalidToken`] if the token is malformed, forged,
    /// expired, from the future, or bound to a different address.
    pub fn validate(&self, token: &[u8], now: u64, client_ip: u32) -> WireResult<RetryTokenClaims> {
        let claims = self.verify_integrity(token)?;
        if claims.client_ip != client_ip {
            return Err(WireError::InvalidToken);
        }
        if claims.issued_at > now {
            return Err(WireError::InvalidToken);
        }
        if now - claims.issued_at > self.lifetime_secs {
            return Err(WireError::InvalidToken);
        }
        Ok(claims)
    }

    /// Checks only the authenticity of a token, without freshness or
    /// address checks. Useful for diagnostics.
    ///
    /// # Errors
    /// [`WireError::InvalidToken`] on malformed or forged input.
    pub fn verify_integrity(&self, token: &[u8]) -> WireResult<RetryTokenClaims> {
        if token.len() < 13 + TOKEN_TAG_LEN {
            return Err(WireError::InvalidToken);
        }
        let (body, tag) = token.split_at(token.len() - TOKEN_TAG_LEN);
        if siphash24_128(self.key, body) != tag {
            return Err(WireError::InvalidToken);
        }
        let issued_at = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        let client_ip = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        let odcid_len = body[12] as usize;
        if body.len() != 13 + odcid_len {
            return Err(WireError::InvalidToken);
        }
        let original_dcid =
            ConnectionId::new(&body[13..13 + odcid_len]).map_err(|_| WireError::InvalidToken)?;
        Ok(RetryTokenClaims {
            issued_at,
            client_ip,
            original_dcid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn minter() -> TokenMinter {
        TokenMinter::new(SipKey { k0: 11, k1: 22 })
    }

    fn odcid() -> ConnectionId {
        ConnectionId::new(&[0xca, 0xfe, 0xba, 0xbe]).unwrap()
    }

    #[test]
    fn mint_validate_roundtrip() {
        let m = minter();
        let token = m.mint(100, 0x0a00_0001, &odcid());
        let claims = m.validate(&token, 110, 0x0a00_0001).unwrap();
        assert_eq!(claims.issued_at, 100);
        assert_eq!(claims.client_ip, 0x0a00_0001);
        assert_eq!(claims.original_dcid, odcid());
    }

    #[test]
    fn expired_token_rejected() {
        let m = minter();
        let token = m.mint(100, 1, &odcid());
        assert!(m
            .validate(&token, 100 + DEFAULT_TOKEN_LIFETIME_SECS, 1)
            .is_ok());
        assert_eq!(
            m.validate(&token, 101 + DEFAULT_TOKEN_LIFETIME_SECS, 1),
            Err(WireError::InvalidToken)
        );
    }

    #[test]
    fn future_token_rejected() {
        let m = minter();
        let token = m.mint(100, 1, &odcid());
        assert_eq!(m.validate(&token, 99, 1), Err(WireError::InvalidToken));
    }

    #[test]
    fn spoofed_address_rejected() {
        // The core of the RETRY defence: a token minted for one source
        // address is useless to a spoofer at another.
        let m = minter();
        let token = m.mint(100, 1, &odcid());
        assert_eq!(m.validate(&token, 100, 2), Err(WireError::InvalidToken));
    }

    #[test]
    fn forged_token_rejected() {
        let m = minter();
        let mut token = m.mint(100, 1, &odcid());
        for pos in 0..token.len() {
            token[pos] ^= 0x80;
            assert!(
                m.verify_integrity(&token).is_err(),
                "flip at {pos} must invalidate"
            );
            token[pos] ^= 0x80;
        }
    }

    #[test]
    fn token_from_other_server_rejected() {
        let m1 = minter();
        let m2 = TokenMinter::new(SipKey { k0: 99, k1: 98 });
        let token = m1.mint(100, 1, &odcid());
        assert!(m2.validate(&token, 100, 1).is_err());
    }

    #[test]
    fn short_inputs_rejected() {
        let m = minter();
        assert!(m.verify_integrity(&[]).is_err());
        assert!(m.verify_integrity(&[0u8; 12]).is_err());
        assert!(m.verify_integrity(&[0u8; 28]).is_err());
    }

    #[test]
    fn custom_lifetime_respected() {
        let m = minter().with_lifetime(5);
        let token = m.mint(0, 1, &odcid());
        assert!(m.validate(&token, 5, 1).is_ok());
        assert!(m.validate(&token, 6, 1).is_err());
    }

    #[test]
    fn empty_odcid_supported() {
        let m = minter();
        let token = m.mint(0, 1, &ConnectionId::EMPTY);
        let claims = m.validate(&token, 0, 1).unwrap();
        assert!(claims.original_dcid.is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            now in 0u64..1_000_000,
            ip in any::<u32>(),
            odcid_bytes in proptest::collection::vec(any::<u8>(), 0..=20),
        ) {
            let m = minter();
            let cid = ConnectionId::new(&odcid_bytes).unwrap();
            let token = m.mint(now, ip, &cid);
            let claims = m.validate(&token, now, ip).unwrap();
            prop_assert_eq!(claims.issued_at, now);
            prop_assert_eq!(claims.client_ip, ip);
            prop_assert_eq!(claims.original_dcid, cid);
        }

        #[test]
        fn prop_garbage_never_validates(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // The chance of random data carrying a valid 128-bit tag is
            // negligible; assert it deterministically for the sampled
            // inputs.
            let m = minter();
            prop_assert!(m.verify_integrity(&data).is_err());
        }
    }
}
