//! Packet-number truncation and reconstruction (RFC 9000 §17.1, §A.2,
//! §A.3).
//!
//! QUIC transmits only the least-significant 1–4 bytes of the 62-bit
//! packet number; the receiver reconstructs the full value from the
//! largest packet number it has processed.

use crate::error::{WireError, WireResult};
use bytes::{Buf, BufMut};

/// Largest legal packet number (2^62 - 1, same bound as varints).
pub const MAX_PACKET_NUMBER: u64 = (1 << 62) - 1;

/// Chooses the minimal encoding length (1–4 bytes) for `pn` given the
/// largest acknowledged packet number, per RFC 9000 §A.2.
pub fn encoded_len(pn: u64, largest_acked: Option<u64>) -> usize {
    let num_unacked = match largest_acked {
        Some(acked) => pn.saturating_sub(acked),
        None => pn + 1,
    };
    // Need ceil(log2(num_unacked)) + 1 bits.
    let min_bits = 64 - num_unacked.leading_zeros() as usize + 1;
    min_bits.div_ceil(8).clamp(1, 4)
}

/// Writes the `len`-byte truncated representation of `pn`.
///
/// # Errors
/// [`WireError::InvalidValue`] if `len` is not in 1..=4.
pub fn write_packet_number<B: BufMut>(buf: &mut B, pn: u64, len: usize) -> WireResult<()> {
    match len {
        1 => buf.put_u8(pn as u8),
        2 => buf.put_u16(pn as u16),
        3 => {
            buf.put_u8((pn >> 16) as u8);
            buf.put_u16(pn as u16);
        }
        4 => buf.put_u32(pn as u32),
        _ => {
            return Err(WireError::InvalidValue {
                what: "packet number length",
            })
        }
    }
    Ok(())
}

/// Reads a truncated packet number of `len` bytes.
///
/// # Errors
/// [`WireError::UnexpectedEnd`] on truncated input,
/// [`WireError::InvalidValue`] for an illegal `len`.
pub fn read_packet_number<B: Buf>(buf: &mut B, len: usize) -> WireResult<u64> {
    if !(1..=4).contains(&len) {
        return Err(WireError::InvalidValue {
            what: "packet number length",
        });
    }
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEnd {
            what: "packet number",
        });
    }
    let mut value = 0u64;
    for _ in 0..len {
        value = (value << 8) | u64::from(buf.get_u8());
    }
    Ok(value)
}

/// Reconstructs the full packet number from a truncated one, per
/// RFC 9000 §A.3.
///
/// `largest_pn` is the largest packet number processed so far in this
/// packet number space (`None` before any packet was received).
pub fn decode_packet_number(truncated: u64, len: usize, largest_pn: Option<u64>) -> u64 {
    let pn_nbits = (len * 8) as u32;
    let expected = largest_pn.map_or(0, |l| l + 1);
    let pn_win = 1u64 << pn_nbits;
    let pn_hwin = pn_win / 2;
    let pn_mask = pn_win - 1;

    let candidate = (expected & !pn_mask) | truncated;
    if candidate + pn_hwin <= expected && candidate + pn_win < (1 << 62) {
        candidate + pn_win
    } else if candidate > expected + pn_hwin && candidate >= pn_win {
        candidate - pn_win
    } else {
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc9000_a3_example() {
        // RFC 9000 §A.3: largest = 0xa82f30ea, truncated 16-bit 0x9b32
        // decodes to 0xa82f9b32.
        assert_eq!(
            decode_packet_number(0x9b32, 2, Some(0xa82f_30ea)),
            0xa82f_9b32
        );
    }

    #[test]
    fn rfc9000_a2_example() {
        // §A.2: sending 0xac5c02 after acking 0xabe8b3 needs 16 bits.
        assert_eq!(encoded_len(0xac5c02, Some(0xabe8b3)), 2);
        // and 0xace8fe needs 18 bits -> 3 bytes.
        assert_eq!(encoded_len(0xace8fe, Some(0xabe8b3)), 3);
    }

    #[test]
    fn first_packet_uses_one_byte() {
        assert_eq!(encoded_len(0, None), 1);
        assert_eq!(encoded_len(0xff, None), 2);
    }

    #[test]
    fn write_read_all_lengths() {
        for len in 1..=4 {
            let pn = 0x0102_0304u64 & ((1u64 << (len * 8)) - 1);
            let mut buf = Vec::new();
            write_packet_number(&mut buf, pn, len).unwrap();
            assert_eq!(buf.len(), len);
            let mut slice = &buf[..];
            assert_eq!(read_packet_number(&mut slice, len).unwrap(), pn);
        }
    }

    #[test]
    fn illegal_lengths_rejected() {
        let mut buf = Vec::new();
        assert!(write_packet_number(&mut buf, 0, 0).is_err());
        assert!(write_packet_number(&mut buf, 0, 5).is_err());
        let mut slice: &[u8] = &[1, 2, 3, 4, 5];
        assert!(read_packet_number(&mut slice, 5).is_err());
        let mut short: &[u8] = &[1];
        assert!(read_packet_number(&mut short, 2).is_err());
    }

    #[test]
    fn decode_without_history() {
        assert_eq!(decode_packet_number(0, 1, None), 0);
        assert_eq!(decode_packet_number(5, 1, None), 5);
    }

    proptest! {
        #[test]
        fn prop_truncate_then_decode_recovers(
            largest in 0u64..=1_000_000_000,
            delta in 1u64..=1000,
        ) {
            // Sender transmits pn = largest + delta with the RFC-chosen
            // length; receiver must recover it exactly.
            let pn = largest + delta;
            let len = encoded_len(pn, Some(largest));
            let truncated = pn & ((1u64 << (len * 8)) - 1);
            prop_assert_eq!(decode_packet_number(truncated, len, Some(largest)), pn);
        }

        #[test]
        fn prop_wire_roundtrip(pn in 0u64..=u32::MAX as u64, len in 1usize..=4) {
            let masked = pn & ((1u64 << (len * 8)) - 1);
            let mut buf = Vec::new();
            write_packet_number(&mut buf, masked, len).unwrap();
            let mut slice = &buf[..];
            prop_assert_eq!(read_packet_number(&mut slice, len).unwrap(), masked);
            prop_assert!(slice.is_empty());
        }
    }
}
