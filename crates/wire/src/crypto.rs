//! Toy packet protection mirroring the *structure* of RFC 9001.
//!
//! Real QUIC protects packets with AES-128-GCM under keys derived (via
//! HKDF) from the client's first destination connection ID — which is why
//! Wireshark can decrypt Initial packets passively, a property the paper's
//! dissection methodology (§4.1) relies on. This module reproduces that
//! structure with SipHash-based primitives:
//!
//! * [`InitialSecrets::derive`] — per-connection keys from `(version,
//!   client DCID)`, so any passive observer (our dissector) can recompute
//!   the Initial keys, exactly as on the real wire;
//! * [`seal`] / [`open`] — authenticated encryption with a 16-byte tag
//!   over the header (AAD) and ciphertext.
//!
//! The substitution is documented in DESIGN.md §2; nothing here is
//! cryptographically secure, and nothing needs to be.

use crate::cid::ConnectionId;
use crate::error::{WireError, WireResult};
use crate::siphash::{siphash24, KeyStream, SipHasher128, SipKey};
use crate::version::Version;

/// Length of the authentication tag appended by [`seal`].
pub const TAG_LEN: usize = 16;

/// The per-version "initial salt" (RFC 9001 §5.2 uses a fixed salt per
/// version; we reduce it to a 64-bit constant mixed into key derivation).
fn initial_salt(version: Version) -> u64 {
    // Distinct constants per version so cross-version decryption fails,
    // as it does on the real wire.
    0x3871_9d2c_41a6_55e0 ^ u64::from(version.to_wire()).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Direction of a protected packet, used for key separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client-to-server.
    ClientToServer,
    /// Server-to-client.
    ServerToClient,
}

/// The pair of directional keys for the Initial packet number space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitialSecrets {
    /// Protects client-to-server Initial packets.
    pub client: SipKey,
    /// Protects server-to-client Initial packets.
    pub server: SipKey,
}

impl InitialSecrets {
    /// Derives Initial keys from the client's first DCID, as any passive
    /// observer of the Initial can (RFC 9001 §5.2 structure).
    pub fn derive(version: Version, client_dcid: &ConnectionId) -> Self {
        let salt = initial_salt(version);
        let base = SipKey {
            k0: salt,
            k1: salt.rotate_left(17) ^ 0x6b65_795f_6261_7365,
        };
        let seed = siphash24(base, client_dcid.as_slice());
        InitialSecrets {
            client: SipKey {
                k0: seed,
                k1: siphash24(base, &seed.to_le_bytes()),
            },
            server: SipKey {
                k0: seed ^ 0x7365_7276_6572_0001,
                k1: siphash24(base, &(seed ^ 1).to_le_bytes()),
            },
        }
    }

    /// The key for the given direction.
    pub fn key(&self, dir: Direction) -> SipKey {
        match dir {
            Direction::ClientToServer => self.client,
            Direction::ServerToClient => self.server,
        }
    }
}

/// Derives a handshake-space key from a shared "secret" (in the toy
/// model: both key shares hashed together).
pub fn handshake_key(client_share: &[u8], server_share: &[u8], dir: Direction) -> SipKey {
    let base = SipKey {
        k0: 0x6873_6b65_795f_7631,
        k1: match dir {
            Direction::ClientToServer => 1,
            Direction::ServerToClient => 2,
        },
    };
    let mut transcript = Vec::with_capacity(client_share.len() + server_share.len());
    transcript.extend_from_slice(client_share);
    transcript.extend_from_slice(server_share);
    let seed = siphash24(base, &transcript);
    SipKey {
        k0: seed,
        k1: seed.rotate_left(29) ^ base.k0,
    }
}

/// Seals `plaintext`: returns `ciphertext || tag` where the tag
/// authenticates `header` (the AAD), the packet number and the
/// ciphertext.
pub fn seal(key: SipKey, packet_number: u64, header: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    KeyStream::new(key, packet_number).apply(&mut out);
    let tag = compute_tag(key, packet_number, header, &out);
    out.extend_from_slice(&tag);
    out
}

/// Opens a sealed payload produced by [`seal`].
///
/// # Errors
/// [`WireError::AeadFailure`] if the tag does not verify or the input is
/// shorter than a tag.
pub fn open(key: SipKey, packet_number: u64, header: &[u8], sealed: &[u8]) -> WireResult<Vec<u8>> {
    if sealed.len() < TAG_LEN {
        return Err(WireError::AeadFailure);
    }
    let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
    let expected = compute_tag(key, packet_number, header, ciphertext);
    if tag != expected {
        return Err(WireError::AeadFailure);
    }
    let mut out = ciphertext.to_vec();
    KeyStream::new(key, packet_number).apply(&mut out);
    Ok(out)
}

fn compute_tag(key: SipKey, packet_number: u64, header: &[u8], ciphertext: &[u8]) -> [u8; 16] {
    // Streamed so the `pn || header || ciphertext` tag material never has
    // to be concatenated into a temporary allocation — this runs once per
    // candidate Initial on the ingest hot path.
    let mut hasher = SipHasher128::new(key);
    hasher.write(&packet_number.to_le_bytes());
    hasher.write(header);
    hasher.write(ciphertext);
    hasher.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dcid() -> ConnectionId {
        ConnectionId::new(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap()
    }

    #[test]
    fn derive_is_deterministic_and_directional() {
        let a = InitialSecrets::derive(Version::V1, &dcid());
        let b = InitialSecrets::derive(Version::V1, &dcid());
        assert_eq!(a, b);
        assert_ne!(a.client, a.server);
        assert_eq!(a.key(Direction::ClientToServer), a.client);
        assert_eq!(a.key(Direction::ServerToClient), a.server);
    }

    #[test]
    fn derive_depends_on_version_and_dcid() {
        let v1 = InitialSecrets::derive(Version::V1, &dcid());
        let d29 = InitialSecrets::derive(Version::Draft29, &dcid());
        assert_ne!(v1, d29, "different versions use different salts");
        let other = InitialSecrets::derive(Version::V1, &ConnectionId::from_u64(99));
        assert_ne!(v1, other, "different DCIDs derive different keys");
    }

    #[test]
    fn seal_open_roundtrip() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let header = b"long header bytes";
        let plaintext = b"crypto frame with client hello";
        let sealed = seal(keys.client, 0, header, plaintext);
        assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
        let opened = open(keys.client, 0, header, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn wrong_key_fails() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let sealed = seal(keys.client, 0, b"hdr", b"payload");
        assert_eq!(
            open(keys.server, 0, b"hdr", &sealed),
            Err(WireError::AeadFailure)
        );
    }

    #[test]
    fn wrong_packet_number_fails() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let sealed = seal(keys.client, 7, b"hdr", b"payload");
        assert!(open(keys.client, 8, b"hdr", &sealed).is_err());
    }

    #[test]
    fn tampered_header_fails() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let sealed = seal(keys.client, 0, b"hdr", b"payload");
        assert!(open(keys.client, 0, b"hdR", &sealed).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let mut sealed = seal(keys.client, 0, b"hdr", b"payload");
        sealed[0] ^= 1;
        assert!(open(keys.client, 0, b"hdr", &sealed).is_err());
    }

    #[test]
    fn short_input_fails_cleanly() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        assert_eq!(
            open(keys.client, 0, b"hdr", &[1, 2, 3]),
            Err(WireError::AeadFailure)
        );
        assert!(open(keys.client, 0, b"hdr", &[]).is_err());
    }

    #[test]
    fn empty_plaintext_seals() {
        let keys = InitialSecrets::derive(Version::V1, &dcid());
        let sealed = seal(keys.client, 0, b"hdr", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(keys.client, 0, b"hdr", &sealed).unwrap(), b"");
    }

    #[test]
    fn handshake_key_agreement() {
        // Both sides compute the same directional keys from the shares.
        let c2s_client = handshake_key(b"cshare", b"sshare", Direction::ClientToServer);
        let c2s_server = handshake_key(b"cshare", b"sshare", Direction::ClientToServer);
        assert_eq!(c2s_client, c2s_server);
        let s2c = handshake_key(b"cshare", b"sshare", Direction::ServerToClient);
        assert_ne!(c2s_client, s2c);
        let other = handshake_key(b"cshare", b"zshare", Direction::ClientToServer);
        assert_ne!(c2s_client, other);
    }

    proptest! {
        #[test]
        fn prop_seal_open_roundtrip(
            dcid_bytes in proptest::collection::vec(any::<u8>(), 0..=20),
            pn in 0u64..1_000_000,
            header in proptest::collection::vec(any::<u8>(), 0..64),
            plaintext in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let cid = ConnectionId::new(&dcid_bytes).unwrap();
            let keys = InitialSecrets::derive(Version::Draft29, &cid);
            let sealed = seal(keys.server, pn, &header, &plaintext);
            let opened = open(keys.server, pn, &header, &sealed).unwrap();
            prop_assert_eq!(opened, plaintext);
        }

        #[test]
        fn prop_bitflip_anywhere_fails(
            plaintext in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in 0usize..8,
            pos_seed in any::<usize>(),
        ) {
            let keys = InitialSecrets::derive(Version::V1, &ConnectionId::from_u64(1));
            let mut sealed = seal(keys.client, 3, b"h", &plaintext);
            let pos = pos_seed % sealed.len();
            sealed[pos] ^= 1 << flip_bit;
            prop_assert!(open(keys.client, 3, b"h", &sealed).is_err());
        }
    }
}
