//! Complete QUIC packets: building (sealing) and parsing (two-stage).
//!
//! Parsing is deliberately split the way a telescope must split it:
//!
//! 1. [`parse_datagram`] — keyless structural parse of a UDP payload into
//!    [`ParsedPacket`]s (QUIC supports coalescing several packets into
//!    one datagram, and servers use this for the Initial+Handshake
//!    flight the paper counts in §6).
//! 2. [`ParsedPacket::open`] — decrypts and decodes frames, for
//!    endpoints (or passive observers re-deriving Initial keys).
//!
//! One deliberate simplification: *header protection* (RFC 9001 §5.4) is
//! not applied, so packet numbers are visible in cleartext. Wireshark
//! removes header protection during dissection anyway (Initial keys are
//! derivable passively), so nothing the paper measures depends on it;
//! see DESIGN.md §2.

use crate::cid::ConnectionId;
use crate::crypto::{open, seal, TAG_LEN};
use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::header::{LongHeader, LongPacketType, ShortHeader, FIXED_BIT, FORM_BIT};
use crate::pktnum::{decode_packet_number, read_packet_number, write_packet_number};
use crate::retry::{compute_retry_tag, verify_retry_tag, RETRY_TAG_LEN};
use crate::siphash::SipKey;
use crate::varint::{read_varint, write_varint};
use crate::version::Version;
use bytes::{Buf, BufMut, Bytes};

/// Plaintext payload of a protected packet, as a frame sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketPayload {
    /// The frames carried by the packet.
    pub frames: Vec<Frame>,
}

impl PacketPayload {
    /// Creates a payload from frames.
    pub fn new(frames: Vec<Frame>) -> Self {
        PacketPayload { frames }
    }

    /// Serializes the frames.
    ///
    /// # Errors
    /// Propagates frame encoding errors.
    pub fn encode(&self) -> WireResult<Vec<u8>> {
        let mut buf = Vec::with_capacity(64);
        for frame in &self.frames {
            frame.encode(&mut buf)?;
        }
        Ok(buf)
    }

    /// Parses a frame sequence.
    ///
    /// # Errors
    /// Propagates frame decoding errors.
    pub fn decode(data: &[u8]) -> WireResult<Self> {
        Ok(PacketPayload {
            frames: Frame::decode_all(data)?,
        })
    }
}

/// A logical QUIC packet, pre-sealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Initial packet (may carry a retry token).
    Initial {
        /// QUIC version.
        version: Version,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Retry/NEW_TOKEN token (empty for first flights).
        token: Bytes,
        /// Full packet number.
        packet_number: u64,
        /// Plaintext frames.
        payload: PacketPayload,
    },
    /// 0-RTT packet.
    ZeroRtt {
        /// QUIC version.
        version: Version,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Full packet number.
        packet_number: u64,
        /// Plaintext frames.
        payload: PacketPayload,
    },
    /// Handshake packet.
    Handshake {
        /// QUIC version.
        version: Version,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Full packet number.
        packet_number: u64,
        /// Plaintext frames.
        payload: PacketPayload,
    },
    /// Retry packet; the integrity tag is computed at encode time.
    Retry {
        /// QUIC version.
        version: Version,
        /// Destination connection ID (the client's SCID).
        dcid: ConnectionId,
        /// Source connection ID (the server's new CID).
        scid: ConnectionId,
        /// The address-validation token.
        token: Bytes,
        /// The client's original DCID (input to the integrity tag; not
        /// itself serialized).
        original_dcid: ConnectionId,
    },
    /// Version Negotiation packet.
    VersionNegotiation {
        /// Destination connection ID (echoed client SCID).
        dcid: ConnectionId,
        /// Source connection ID (echoed client DCID).
        scid: ConnectionId,
        /// Versions the server supports.
        versions: Vec<Version>,
    },
    /// 1-RTT (short header) packet.
    OneRtt {
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Spin bit.
        spin: bool,
        /// Key phase bit.
        key_phase: bool,
        /// Full packet number.
        packet_number: u64,
        /// Plaintext frames.
        payload: PacketPayload,
    },
}

impl Packet {
    /// Packet-number length used on the wire. Fixed at 4 bytes for
    /// simplicity and maximal reconstruction robustness.
    pub const PN_LEN: usize = 4;

    /// Seals and serializes the packet.
    ///
    /// `key` is required for Initial/0-RTT/Handshake/1-RTT packets and
    /// ignored for Retry and Version Negotiation.
    ///
    /// # Errors
    /// [`WireError::InvalidValue`] if a key is missing for a protected
    /// type, plus any frame encoding error.
    pub fn encode(&self, key: Option<SipKey>) -> WireResult<Vec<u8>> {
        match self {
            Packet::Initial {
                version,
                dcid,
                scid,
                token,
                packet_number,
                payload,
            } => {
                let hdr = LongHeader {
                    ty: LongPacketType::Initial,
                    version: *version,
                    dcid: *dcid,
                    scid: *scid,
                };
                let mut extra = Vec::with_capacity(token.len() + 2);
                write_varint(&mut extra, token.len() as u64)?;
                extra.extend_from_slice(token);
                encode_protected(&hdr, &extra, *packet_number, payload, key)
            }
            Packet::ZeroRtt {
                version,
                dcid,
                scid,
                packet_number,
                payload,
            } => {
                let hdr = LongHeader {
                    ty: LongPacketType::ZeroRtt,
                    version: *version,
                    dcid: *dcid,
                    scid: *scid,
                };
                encode_protected(&hdr, &[], *packet_number, payload, key)
            }
            Packet::Handshake {
                version,
                dcid,
                scid,
                packet_number,
                payload,
            } => {
                let hdr = LongHeader {
                    ty: LongPacketType::Handshake,
                    version: *version,
                    dcid: *dcid,
                    scid: *scid,
                };
                encode_protected(&hdr, &[], *packet_number, payload, key)
            }
            Packet::Retry {
                version,
                dcid,
                scid,
                token,
                original_dcid,
            } => {
                let hdr = LongHeader {
                    ty: LongPacketType::Retry,
                    version: *version,
                    dcid: *dcid,
                    scid: *scid,
                };
                let mut out = Vec::with_capacity(64 + token.len());
                hdr.encode(&mut out, 1)?;
                out.extend_from_slice(token);
                let tag = compute_retry_tag(*version, original_dcid, &out);
                out.extend_from_slice(&tag);
                Ok(out)
            }
            Packet::VersionNegotiation {
                dcid,
                scid,
                versions,
            } => {
                let mut out = Vec::with_capacity(16 + versions.len() * 4);
                out.put_u8(FORM_BIT | FIXED_BIT);
                out.put_u32(0);
                dcid.encode_with_len(&mut out);
                scid.encode_with_len(&mut out);
                for v in versions {
                    out.put_u32(v.to_wire());
                }
                Ok(out)
            }
            Packet::OneRtt {
                dcid,
                spin,
                key_phase,
                packet_number,
                payload,
            } => {
                let key = key.ok_or(WireError::InvalidValue {
                    what: "missing key for protected packet",
                })?;
                let hdr = ShortHeader {
                    dcid: *dcid,
                    spin: *spin,
                    key_phase: *key_phase,
                };
                let mut out = Vec::with_capacity(128);
                hdr.encode(&mut out, Self::PN_LEN)?;
                let header_end = out.len();
                write_packet_number(&mut out, *packet_number, Self::PN_LEN)?;
                let plaintext = payload.encode()?;
                let aad = out[..header_end].to_vec();
                let sealed = seal(key, *packet_number, &aad, &plaintext);
                out.extend_from_slice(&sealed);
                Ok(out)
            }
        }
    }

    /// Pads the encoding of a client Initial to `min_size` by appending
    /// PADDING frames *before* sealing, then encodes.
    ///
    /// # Errors
    /// As for [`Packet::encode`]; also if the packet is not an Initial.
    pub fn encode_padded(&self, key: Option<SipKey>, min_size: usize) -> WireResult<Vec<u8>> {
        let Packet::Initial {
            version,
            dcid,
            scid,
            token,
            packet_number,
            payload,
        } = self
        else {
            return Err(WireError::InvalidValue {
                what: "padding only defined for initial packets",
            });
        };
        let bare = self.encode(key)?;
        if bare.len() >= min_size {
            return Ok(bare);
        }
        let mut frames = payload.frames.clone();
        frames.push(Frame::Padding {
            len: min_size - bare.len(),
        });
        Packet::Initial {
            version: *version,
            dcid: *dcid,
            scid: *scid,
            token: token.clone(),
            packet_number: *packet_number,
            payload: PacketPayload::new(frames),
        }
        .encode(key)
    }
}

fn encode_protected(
    hdr: &LongHeader,
    extra_after_scid: &[u8],
    packet_number: u64,
    payload: &PacketPayload,
    key: Option<SipKey>,
) -> WireResult<Vec<u8>> {
    let key = key.ok_or(WireError::InvalidValue {
        what: "missing key for protected packet",
    })?;
    let mut out = Vec::with_capacity(1400);
    hdr.encode(&mut out, Packet::PN_LEN)?;
    out.extend_from_slice(extra_after_scid);
    let plaintext = payload.encode()?;
    // Length covers the packet number and the sealed payload.
    write_varint(
        &mut out,
        (Packet::PN_LEN + plaintext.len() + TAG_LEN) as u64,
    )?;
    let aad = out.clone();
    write_packet_number(&mut out, packet_number, Packet::PN_LEN)?;
    let sealed = seal(key, packet_number, &aad, &plaintext);
    out.extend_from_slice(&sealed);
    Ok(out)
}

/// Structural (keyless) view of one packet from a datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedHeader {
    /// Initial, 0-RTT or Handshake packet.
    Long {
        /// Packet type (never Retry here).
        ty: LongPacketType,
        /// QUIC version.
        version: Version,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Token (Initial packets only; empty otherwise).
        token: Bytes,
        /// Truncated packet number as read from the wire.
        truncated_pn: u64,
        /// Wire length of the packet number.
        pn_len: usize,
    },
    /// Retry packet.
    Retry {
        /// QUIC version.
        version: Version,
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Address-validation token.
        token: Bytes,
        /// Integrity tag (verify with [`verify_retry_tag`]).
        tag: [u8; RETRY_TAG_LEN],
    },
    /// Version Negotiation packet.
    VersionNegotiation {
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Source connection ID.
        scid: ConnectionId,
        /// Offered versions.
        versions: Vec<Version>,
    },
    /// 1-RTT short-header packet.
    Short {
        /// Destination connection ID.
        dcid: ConnectionId,
        /// Spin bit.
        spin: bool,
        /// Key phase bit.
        key_phase: bool,
        /// Truncated packet number.
        truncated_pn: u64,
        /// Wire length of the packet number.
        pn_len: usize,
    },
}

impl ParsedHeader {
    /// The long-header packet type, if any.
    pub fn long_type(&self) -> Option<LongPacketType> {
        match self {
            ParsedHeader::Long { ty, .. } => Some(*ty),
            ParsedHeader::Retry { .. } => Some(LongPacketType::Retry),
            _ => None,
        }
    }

    /// The QUIC version, if the header carries one.
    pub fn version(&self) -> Option<Version> {
        match self {
            ParsedHeader::Long { version, .. } | ParsedHeader::Retry { version, .. } => {
                Some(*version)
            }
            ParsedHeader::VersionNegotiation { .. } => Some(Version::Negotiation),
            ParsedHeader::Short { .. } => None,
        }
    }

    /// The source connection ID, if visible (absent in short headers).
    pub fn scid(&self) -> Option<ConnectionId> {
        match self {
            ParsedHeader::Long { scid, .. }
            | ParsedHeader::Retry { scid, .. }
            | ParsedHeader::VersionNegotiation { scid, .. } => Some(*scid),
            ParsedHeader::Short { .. } => None,
        }
    }

    /// The destination connection ID.
    pub fn dcid(&self) -> ConnectionId {
        match self {
            ParsedHeader::Long { dcid, .. }
            | ParsedHeader::Retry { dcid, .. }
            | ParsedHeader::VersionNegotiation { dcid, .. }
            | ParsedHeader::Short { dcid, .. } => *dcid,
        }
    }
}

/// One structurally parsed packet plus its sealed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// The keyless header view.
    pub header: ParsedHeader,
    /// Sealed payload (ciphertext plus tag); empty for Retry and Version
    /// Negotiation packets.
    pub sealed: Bytes,
    /// Total wire length of this packet within the datagram.
    pub wire_len: usize,
}

impl ParsedPacket {
    /// Decrypts the payload and decodes its frames.
    ///
    /// `largest_pn` is the largest packet number previously processed in
    /// this packet number space, used to reconstruct the full number.
    /// Returns the full packet number and the frames.
    ///
    /// # Errors
    /// [`WireError::AeadFailure`] on key mismatch; frame errors
    /// otherwise. Retry/VN packets yield [`WireError::InvalidValue`].
    pub fn open(
        &self,
        key: SipKey,
        largest_pn: Option<u64>,
        aad: &[u8],
    ) -> WireResult<(u64, Vec<Frame>)> {
        let (truncated, pn_len) = match &self.header {
            ParsedHeader::Long {
                truncated_pn,
                pn_len,
                ..
            }
            | ParsedHeader::Short {
                truncated_pn,
                pn_len,
                ..
            } => (*truncated_pn, *pn_len),
            _ => {
                return Err(WireError::InvalidValue {
                    what: "open() on unprotected packet",
                })
            }
        };
        let pn = decode_packet_number(truncated, pn_len, largest_pn);
        let plaintext = open(key, pn, aad, &self.sealed)?;
        let frames = Frame::decode_all(&plaintext)?;
        Ok((pn, frames))
    }
}

/// Parses all coalesced QUIC packets in a UDP datagram (keyless).
///
/// `short_dcid_len` is the connection ID length assumed for short-header
/// packets (endpoints know theirs; telescopes guess — the dissector
/// passes 8 and treats failures as opaque).
///
/// Returns the parsed packets together with the AAD bytes each needs for
/// [`ParsedPacket::open`].
///
/// # Errors
/// The first structural malformation encountered.
pub fn parse_datagram(
    datagram: &[u8],
    short_dcid_len: usize,
) -> WireResult<Vec<(ParsedPacket, Vec<u8>)>> {
    let mut packets = Vec::new();
    let mut rest = datagram;
    while !rest.is_empty() {
        let before = rest.len();
        let (packet, aad) = parse_one(&mut rest, short_dcid_len)?;
        debug_assert_eq!(packet.wire_len, before - rest.len());
        let is_short = matches!(packet.header, ParsedHeader::Short { .. });
        packets.push((packet, aad));
        // A short-header packet has no length field and consumes the
        // remainder of the datagram; same for Retry and VN (handled in
        // parse_one by consuming everything).
        if is_short {
            break;
        }
    }
    Ok(packets)
}

fn parse_one(rest: &mut &[u8], short_dcid_len: usize) -> WireResult<(ParsedPacket, Vec<u8>)> {
    let input = *rest;
    if input.is_empty() {
        return Err(WireError::UnexpectedEnd { what: "packet" });
    }
    if input[0] & FORM_BIT == 0 {
        // Short header: consumes the rest of the datagram.
        let mut buf = input;
        let (hdr, _first) = ShortHeader::decode(&mut buf, short_dcid_len)?;
        let pn_len = ((input[0] & 0b11) + 1) as usize;
        let header_len = input.len() - buf.remaining();
        let mut pn_buf = buf;
        let truncated_pn = read_packet_number(&mut pn_buf, pn_len)?;
        let aad = input[..header_len].to_vec();
        let sealed = Bytes::copy_from_slice(pn_buf);
        *rest = &[];
        return Ok((
            ParsedPacket {
                header: ParsedHeader::Short {
                    dcid: hdr.dcid,
                    spin: hdr.spin,
                    key_phase: hdr.key_phase,
                    truncated_pn,
                    pn_len,
                },
                sealed,
                wire_len: input.len(),
            },
            aad,
        ));
    }

    let mut buf = input;
    let (hdr, first) = LongHeader::decode(&mut buf)?;

    if hdr.version == Version::Negotiation {
        // Version list until the end of the datagram.
        let mut versions = Vec::new();
        while buf.remaining() >= 4 {
            versions.push(Version::from_wire(buf.get_u32()));
        }
        if buf.remaining() != 0 {
            return Err(WireError::UnexpectedEnd {
                what: "version list",
            });
        }
        *rest = &[];
        return Ok((
            ParsedPacket {
                header: ParsedHeader::VersionNegotiation {
                    dcid: hdr.dcid,
                    scid: hdr.scid,
                    versions,
                },
                sealed: Bytes::new(),
                wire_len: input.len(),
            },
            Vec::new(),
        ));
    }

    if hdr.ty == LongPacketType::Retry {
        // Token is everything up to the final 16-byte tag.
        let remaining = buf.remaining();
        if remaining < RETRY_TAG_LEN {
            return Err(WireError::UnexpectedEnd { what: "retry tag" });
        }
        let token = Bytes::copy_from_slice(&buf.chunk()[..remaining - RETRY_TAG_LEN]);
        let mut tag = [0u8; RETRY_TAG_LEN];
        tag.copy_from_slice(&buf.chunk()[remaining - RETRY_TAG_LEN..]);
        *rest = &[];
        return Ok((
            ParsedPacket {
                header: ParsedHeader::Retry {
                    version: hdr.version,
                    dcid: hdr.dcid,
                    scid: hdr.scid,
                    token,
                    tag,
                },
                sealed: Bytes::new(),
                wire_len: input.len(),
            },
            Vec::new(),
        ));
    }

    // Initial: token length + token precede the Length field.
    let token = if hdr.ty == LongPacketType::Initial {
        let token_len = read_varint(&mut buf)? as usize;
        if buf.remaining() < token_len {
            return Err(WireError::LengthOutOfBounds {
                claimed: token_len,
                available: buf.remaining(),
            });
        }
        Bytes::copy_from_slice(&buf.chunk()[..token_len])
    } else {
        Bytes::new()
    };
    if hdr.ty == LongPacketType::Initial {
        buf.advance(token.len());
    }

    let length = read_varint(&mut buf)? as usize;
    if buf.remaining() < length {
        return Err(WireError::LengthOutOfBounds {
            claimed: length,
            available: buf.remaining(),
        });
    }
    let pn_len = LongHeader::pn_len_from_first_byte(first);
    if length < pn_len {
        return Err(WireError::InvalidValue {
            what: "length shorter than packet number",
        });
    }
    // AAD is the header through the Length field (everything before the
    // packet number), exactly what encode_protected used.
    let header_len = input.len() - buf.remaining();
    let aad = input[..header_len].to_vec();
    let mut pn_buf = &buf.chunk()[..pn_len];
    let truncated_pn = read_packet_number(&mut pn_buf, pn_len)?;
    let sealed = Bytes::copy_from_slice(&buf.chunk()[pn_len..length]);
    buf.advance(length);

    let wire_len = input.len() - buf.remaining();
    *rest = &input[wire_len..];
    Ok((
        ParsedPacket {
            header: ParsedHeader::Long {
                ty: hdr.ty,
                version: hdr.version,
                dcid: hdr.dcid,
                scid: hdr.scid,
                token,
                truncated_pn,
                pn_len,
            },
            sealed,
            wire_len,
        },
        aad,
    ))
}

/// Verifies a parsed Retry packet's integrity tag against the original
/// DCID. Reconstructs the pseudo-packet prefix from the parsed fields.
///
/// # Errors
/// [`WireError::RetryIntegrityFailure`] on mismatch.
pub fn verify_parsed_retry(parsed: &ParsedHeader, original_dcid: &ConnectionId) -> WireResult<()> {
    let ParsedHeader::Retry {
        version,
        dcid,
        scid,
        token,
        tag,
    } = parsed
    else {
        return Err(WireError::InvalidValue {
            what: "not a retry packet",
        });
    };
    let hdr = LongHeader {
        ty: LongPacketType::Retry,
        version: *version,
        dcid: *dcid,
        scid: *scid,
    };
    let mut prefix = Vec::with_capacity(32 + token.len());
    hdr.encode(&mut prefix, 1)?;
    prefix.extend_from_slice(token);
    verify_retry_tag(*version, original_dcid, &prefix, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::{Direction, InitialSecrets};

    fn keys() -> InitialSecrets {
        InitialSecrets::derive(Version::V1, &ConnectionId::from_u64(0xabcd))
    }

    fn sample_initial() -> Packet {
        Packet::Initial {
            version: Version::V1,
            dcid: ConnectionId::from_u64(0xabcd),
            scid: ConnectionId::from_u64(0x1234),
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"client hello"),
            }]),
        }
    }

    #[test]
    fn initial_roundtrip() {
        let key = keys().key(Direction::ClientToServer);
        let wire = sample_initial().encode(Some(key)).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        assert_eq!(packets.len(), 1);
        let (parsed, aad) = &packets[0];
        assert_eq!(parsed.wire_len, wire.len());
        match &parsed.header {
            ParsedHeader::Long {
                ty,
                version,
                dcid,
                scid,
                token,
                ..
            } => {
                assert_eq!(*ty, LongPacketType::Initial);
                assert_eq!(*version, Version::V1);
                assert_eq!(*dcid, ConnectionId::from_u64(0xabcd));
                assert_eq!(*scid, ConnectionId::from_u64(0x1234));
                assert!(token.is_empty());
            }
            other => panic!("expected long header, got {other:?}"),
        }
        let (pn, frames) = parsed.open(key, None, aad).unwrap();
        assert_eq!(pn, 0);
        assert_eq!(
            frames,
            vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"client hello"),
            }]
        );
    }

    #[test]
    fn initial_with_token_roundtrip() {
        let key = keys().key(Direction::ClientToServer);
        let packet = Packet::Initial {
            version: Version::V1,
            dcid: ConnectionId::from_u64(0xabcd),
            scid: ConnectionId::from_u64(0x1234),
            token: Bytes::from_static(b"a retry token"),
            packet_number: 1,
            payload: PacketPayload::new(vec![Frame::Ping]),
        };
        let wire = packet.encode(Some(key)).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        let (parsed, aad) = &packets[0];
        match &parsed.header {
            ParsedHeader::Long { token, .. } => {
                assert_eq!(token.as_ref(), b"a retry token");
            }
            other => panic!("unexpected {other:?}"),
        }
        let (pn, frames) = parsed.open(key, Some(0), aad).unwrap();
        assert_eq!(pn, 1);
        assert_eq!(frames, vec![Frame::Ping]);
    }

    #[test]
    fn padded_initial_reaches_min_size() {
        let key = keys().key(Direction::ClientToServer);
        let wire = sample_initial()
            .encode_padded(Some(key), crate::MIN_INITIAL_SIZE)
            .unwrap();
        assert!(wire.len() >= crate::MIN_INITIAL_SIZE);
        // Still parses and opens.
        let packets = parse_datagram(&wire, 8).unwrap();
        let (parsed, aad) = &packets[0];
        let (_, frames) = parsed.open(key, None, aad).unwrap();
        assert!(frames.iter().any(|f| matches!(f, Frame::Padding { .. })));
    }

    #[test]
    fn padding_noop_when_already_large() {
        let key = keys().key(Direction::ClientToServer);
        let bare = sample_initial().encode(Some(key)).unwrap();
        let padded = sample_initial().encode_padded(Some(key), 10).unwrap();
        assert_eq!(bare, padded);
    }

    #[test]
    fn encode_padded_rejects_non_initial() {
        let packet = Packet::Handshake {
            version: Version::V1,
            dcid: ConnectionId::EMPTY,
            scid: ConnectionId::EMPTY,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Ping]),
        };
        assert!(packet.encode_padded(Some(keys().client), 1200).is_err());
    }

    #[test]
    fn missing_key_rejected() {
        assert!(sample_initial().encode(None).is_err());
    }

    #[test]
    fn coalesced_initial_and_handshake() {
        // The server's first flight in the paper (§6): one datagram with
        // an Initial (Server Hello) coalesced with a Handshake packet.
        let secrets = keys();
        let initial = Packet::Initial {
            version: Version::V1,
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"server hello"),
            }]),
        };
        let handshake = Packet::Handshake {
            version: Version::V1,
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"cert chain"),
            }]),
        };
        let mut datagram = initial.encode(Some(secrets.server)).unwrap();
        datagram.extend(handshake.encode(Some(secrets.server)).unwrap());

        let packets = parse_datagram(&datagram, 8).unwrap();
        assert_eq!(packets.len(), 2);
        assert_eq!(
            packets[0].0.header.long_type(),
            Some(LongPacketType::Initial)
        );
        assert_eq!(
            packets[1].0.header.long_type(),
            Some(LongPacketType::Handshake)
        );
        let (_, frames) = packets[1]
            .0
            .open(secrets.server, None, &packets[1].1)
            .unwrap();
        assert_eq!(
            frames,
            vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from_static(b"cert chain"),
            }]
        );
    }

    #[test]
    fn retry_roundtrip_with_tag_verification() {
        let odcid = ConnectionId::from_u64(0xabcd);
        let packet = Packet::Retry {
            version: Version::V1,
            dcid: ConnectionId::from_u64(0x1234),
            scid: ConnectionId::from_u64(0x5678),
            token: Bytes::from_static(b"validate me"),
            original_dcid: odcid,
        };
        let wire = packet.encode(None).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        assert_eq!(packets.len(), 1);
        let header = &packets[0].0.header;
        match header {
            ParsedHeader::Retry { token, .. } => {
                assert_eq!(token.as_ref(), b"validate me");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(verify_parsed_retry(header, &odcid).is_ok());
        // Wrong ODCID must fail.
        assert!(verify_parsed_retry(header, &ConnectionId::from_u64(9)).is_err());
    }

    #[test]
    fn version_negotiation_roundtrip() {
        let packet = Packet::VersionNegotiation {
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            versions: vec![Version::V1, Version::Draft29],
        };
        let wire = packet.encode(None).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        match &packets[0].0.header {
            ParsedHeader::VersionNegotiation { versions, .. } => {
                assert_eq!(versions, &vec![Version::V1, Version::Draft29]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn one_rtt_roundtrip() {
        let key = SipKey { k0: 5, k1: 6 };
        let packet = Packet::OneRtt {
            dcid: ConnectionId::from_u64(42),
            spin: true,
            key_phase: false,
            packet_number: 12345,
            payload: PacketPayload::new(vec![Frame::Ping]),
        };
        let wire = packet.encode(Some(key)).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        let (parsed, aad) = &packets[0];
        match &parsed.header {
            ParsedHeader::Short { dcid, spin, .. } => {
                assert_eq!(*dcid, ConnectionId::from_u64(42));
                assert!(spin);
            }
            other => panic!("unexpected {other:?}"),
        }
        let (pn, frames) = parsed.open(key, Some(12344), aad).unwrap();
        assert_eq!(pn, 12345);
        assert_eq!(frames, vec![Frame::Ping]);
    }

    #[test]
    fn wrong_key_fails_open() {
        let key = keys().key(Direction::ClientToServer);
        let wrong = keys().key(Direction::ServerToClient);
        let wire = sample_initial().encode(Some(key)).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        let (parsed, aad) = &packets[0];
        assert_eq!(parsed.open(wrong, None, aad), Err(WireError::AeadFailure));
    }

    #[test]
    fn truncated_datagram_rejected() {
        let key = keys().key(Direction::ClientToServer);
        let wire = sample_initial().encode(Some(key)).unwrap();
        for cut in 1..wire.len() {
            assert!(
                parse_datagram(&wire[..cut], 8).is_err(),
                "prefix of {cut} must not parse"
            );
        }
    }

    #[test]
    fn garbage_rejected_cleanly() {
        assert!(parse_datagram(&[], 8).unwrap().is_empty());
        // DNS-over-UDP-looking bytes: no QUIC fixed bit.
        let dns = [0x12u8, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
        assert!(parse_datagram(&dns, 8).is_err());
    }

    #[test]
    fn header_accessors() {
        let key = keys().key(Direction::ClientToServer);
        let wire = sample_initial().encode(Some(key)).unwrap();
        let packets = parse_datagram(&wire, 8).unwrap();
        let header = &packets[0].0.header;
        assert_eq!(header.long_type(), Some(LongPacketType::Initial));
        assert_eq!(header.version(), Some(Version::V1));
        assert_eq!(header.scid(), Some(ConnectionId::from_u64(0x1234)));
        assert_eq!(header.dcid(), ConnectionId::from_u64(0xabcd));
    }
}
