//! Metric bundles for the ingest pipeline and its stage timings.
//!
//! Counters mirror [`IngestStats`]/[`QuarantineStats`] field for field.
//! The pipeline keeps its plain (non-atomic) stats structs on the hot
//! path and callers publish *deltas* into these shared handles at
//! deterministic barriers — shard merge in batch mode, chunk end in
//! live mode. That keeps per-record overhead at zero while making the
//! reconciliation invariant (`counter == stats field`, exactly, at any
//! shard count) hold by construction at every export point.

use crate::pipeline::{IngestStats, PipelineStats, QuarantineStats};
use quicsand_dissect::DissectMetrics;
use quicsand_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, Stability, STAGE_WALLTIME_MICROS_BUCKETS,
};

/// Counter bundle mirroring [`IngestStats`] (and, nested, the
/// quarantine taxonomy and per-dissect-kind rejections).
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// `quicsand_ingest_records_total` == [`IngestStats::total`].
    pub records_total: Counter,
    /// `{class="quic_candidate"}` == [`IngestStats::quic_candidates`].
    pub quic_candidates: Counter,
    /// `{class="quic_valid"}` == [`IngestStats::quic_valid`].
    pub quic_valid: Counter,
    /// `{class="quic_false_positive"}` == [`IngestStats::quic_false_positives`].
    pub quic_false_positives: Counter,
    /// `{class="tcp"}` == [`IngestStats::tcp`].
    pub tcp: Counter,
    /// `{class="icmp"}` == [`IngestStats::icmp`].
    pub icmp: Counter,
    /// `{class="other_udp"}` == [`IngestStats::other_udp`].
    pub other_udp: Counter,
    /// `{class="ambiguous"}` == [`IngestStats::ambiguous`].
    pub ambiguous: Counter,
    /// Per-kind quarantine counters, one per [`QuarantineStats`] field.
    pub quarantined: QuarantineMetrics,
    /// Per-[`quicsand_dissect::DissectError`]-kind rejection counters —
    /// the dissector-originated subset of the quarantine taxonomy.
    pub dissect: DissectMetrics,
}

/// One counter per [`QuarantineStats`] field, registered under
/// `quicsand_ingest_quarantined_total{kind="..."}` with the same kind
/// labels `QuarantineStats::as_table` prints.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field meanings documented on QuarantineStats
pub struct QuarantineMetrics {
    pub truncated: Counter,
    pub bad_version: Counter,
    pub bad_cid: Counter,
    pub not_quic: Counter,
    pub empty_payload: Counter,
    pub duplicate: Counter,
    pub reordered: Counter,
    pub clock_skew: Counter,
    pub transport_mismatch: Counter,
}

impl QuarantineMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        const NAME: &str = "quicsand_ingest_quarantined_total";
        const HELP: &str = "Records the ingest guard or dissector quarantined, by kind";
        let kind =
            |k: &'static str| registry.counter_with(NAME, HELP, Stability::Stable, &[("kind", k)]);
        QuarantineMetrics {
            truncated: kind("truncated"),
            bad_version: kind("bad-version"),
            bad_cid: kind("bad-cid"),
            not_quic: kind("not-quic"),
            empty_payload: kind("empty-payload"),
            duplicate: kind("duplicate"),
            reordered: kind("reordered"),
            clock_skew: kind("clock-skew"),
            transport_mismatch: kind("transport-mismatch"),
        }
    }

    /// `(counter, stats field)` pairs in `as_table` order.
    fn pairs<'a>(&'a self, stats: &'a QuarantineStats) -> [(&'a Counter, u64); 9] {
        [
            (&self.truncated, stats.truncated),
            (&self.bad_version, stats.bad_version),
            (&self.bad_cid, stats.bad_cid),
            (&self.not_quic, stats.not_quic),
            (&self.empty_payload, stats.empty_payload),
            (&self.duplicate, stats.duplicate),
            (&self.reordered, stats.reordered),
            (&self.clock_skew, stats.clock_skew),
            (&self.transport_mismatch, stats.transport_mismatch),
        ]
    }
}

impl IngestMetrics {
    /// Registers the full ingest counter family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        const CLASS_NAME: &str = "quicsand_ingest_classified_total";
        const CLASS_HELP: &str = "Records classified by the ingest pipeline, by class";
        let class = |c: &'static str| {
            registry.counter_with(CLASS_NAME, CLASS_HELP, Stability::Stable, &[("class", c)])
        };
        IngestMetrics {
            records_total: registry.counter(
                "quicsand_ingest_records_total",
                "Records offered to the ingest pipeline",
                Stability::Stable,
            ),
            quic_candidates: class("quic_candidate"),
            quic_valid: class("quic_valid"),
            quic_false_positives: class("quic_false_positive"),
            tcp: class("tcp"),
            icmp: class("icmp"),
            other_udp: class("other_udp"),
            ambiguous: class("ambiguous"),
            quarantined: QuarantineMetrics::register(registry),
            dissect: DissectMetrics::register(registry),
        }
    }

    /// Publishes the difference `now - prev` into the counters. `prev`
    /// must be an earlier reading of the same monotone stats (panics on
    /// regression — that would mean the stats themselves went
    /// backwards).
    pub fn add_delta(&self, prev: &IngestStats, now: &IngestStats) {
        self.records_total
            .add(delta(prev.total, now.total, "total"));
        self.quic_candidates.add(delta(
            prev.quic_candidates,
            now.quic_candidates,
            "quic_candidates",
        ));
        self.quic_valid
            .add(delta(prev.quic_valid, now.quic_valid, "quic_valid"));
        self.quic_false_positives.add(delta(
            prev.quic_false_positives,
            now.quic_false_positives,
            "quic_false_positives",
        ));
        self.tcp.add(delta(prev.tcp, now.tcp, "tcp"));
        self.icmp.add(delta(prev.icmp, now.icmp, "icmp"));
        self.other_udp
            .add(delta(prev.other_udp, now.other_udp, "other_udp"));
        self.ambiguous
            .add(delta(prev.ambiguous, now.ambiguous, "ambiguous"));
        let prev_q = &prev.quarantine;
        let now_q = &now.quarantine;
        for ((counter, prev_v), (_, now_v)) in self
            .quarantined
            .pairs(prev_q)
            .iter()
            .zip(self.quarantined.pairs(now_q).iter())
        {
            counter.add(delta(*prev_v, *now_v, "quarantine kind"));
        }
        // The dissector-originated quarantine kinds feed the per-kind
        // dissect counters one-to-one.
        self.dissect
            .empty
            .add(delta(prev_q.empty_payload, now_q.empty_payload, "empty"));
        self.dissect
            .truncated
            .add(delta(prev_q.truncated, now_q.truncated, "truncated"));
        self.dissect
            .bad_version
            .add(delta(prev_q.bad_version, now_q.bad_version, "bad_version"));
        self.dissect
            .bad_cid
            .add(delta(prev_q.bad_cid, now_q.bad_cid, "bad_cid"));
        self.dissect
            .not_quic
            .add(delta(prev_q.not_quic, now_q.not_quic, "not_quic"));
    }

    /// Publishes a full stats struct (delta from zero).
    pub fn add_stats(&self, stats: &IngestStats) {
        self.add_delta(&IngestStats::default(), stats);
    }

    /// The reconciliation invariant: every counter equals its stats
    /// field exactly. Returns the list of mismatches on failure.
    pub fn verify(&self, stats: &IngestStats) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let mut check = |name: &str, counter: &Counter, field: u64| {
            if counter.get() != field {
                errors.push(format!(
                    "{name}: counter {} != stats {field}",
                    counter.get()
                ));
            }
        };
        check("total", &self.records_total, stats.total);
        check(
            "quic_candidates",
            &self.quic_candidates,
            stats.quic_candidates,
        );
        check("quic_valid", &self.quic_valid, stats.quic_valid);
        check(
            "quic_false_positives",
            &self.quic_false_positives,
            stats.quic_false_positives,
        );
        check("tcp", &self.tcp, stats.tcp);
        check("icmp", &self.icmp, stats.icmp);
        check("other_udp", &self.other_udp, stats.other_udp);
        check("ambiguous", &self.ambiguous, stats.ambiguous);
        for ((counter, field), (label, _)) in self
            .quarantined
            .pairs(&stats.quarantine)
            .iter()
            .zip(stats.quarantine.as_table().iter())
        {
            check(&format!("quarantine[{label}]"), counter, *field);
        }
        let q = &stats.quarantine;
        check("dissect[empty]", &self.dissect.empty, q.empty_payload);
        check("dissect[truncated]", &self.dissect.truncated, q.truncated);
        check(
            "dissect[bad_version]",
            &self.dissect.bad_version,
            q.bad_version,
        );
        check("dissect[bad_cid]", &self.dissect.bad_cid, q.bad_cid);
        check("dissect[not_quic]", &self.dissect.not_quic, q.not_quic);
        if self.dissect.total() != stats.quic_false_positives {
            errors.push(format!(
                "dissect total {} != quic_false_positives {}",
                self.dissect.total(),
                stats.quic_false_positives
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// Stage-timing metrics over [`PipelineStats`]: walltime histograms
/// (one observation per shard in batch mode, per chunk in live mode)
/// plus end-of-run total gauges. All `Volatile` except the peak-session
/// high-water mark, which is a pure function of the trace.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// `quicsand_stage_walltime_micros{stage="ingest"}`.
    pub ingest_walltime: Histogram,
    /// `{stage="sanitize"}` — zero observations in live mode.
    pub sanitize_walltime: Histogram,
    /// `{stage="sessionize"}`.
    pub sessionize_walltime: Histogram,
    /// `{stage="detect"}`.
    pub detect_walltime: Histogram,
    /// `quicsand_stage_total_micros{stage=...}` gauges, same order as
    /// the histograms.
    pub totals: [Gauge; 4],
    /// `quicsand_pipeline_threads` — worker threads / shards used.
    pub threads: Gauge,
    /// `quicsand_pipeline_peak_open_sessions` ==
    /// [`PipelineStats::peak_open_sessions`].
    pub peak_open_sessions: Gauge,
}

/// Stage label values, in [`StageMetrics::totals`] order.
pub const STAGE_LABELS: [&str; 4] = ["ingest", "sanitize", "sessionize", "detect"];

impl StageMetrics {
    /// Registers the stage-timing family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        const HIST_NAME: &str = "quicsand_stage_walltime_micros";
        const HIST_HELP: &str =
            "Per-shard (batch) or per-chunk (live) stage wall time, microseconds";
        let hist = |stage: &'static str| {
            registry.histogram_with(
                HIST_NAME,
                HIST_HELP,
                Stability::Volatile,
                STAGE_WALLTIME_MICROS_BUCKETS,
                &[("stage", stage)],
            )
        };
        const TOTAL_NAME: &str = "quicsand_stage_total_micros";
        const TOTAL_HELP: &str = "Whole-run stage wall time, microseconds";
        let total = |stage: &'static str| {
            registry.gauge_with(
                TOTAL_NAME,
                TOTAL_HELP,
                Stability::Volatile,
                &[("stage", stage)],
            )
        };
        StageMetrics {
            ingest_walltime: hist("ingest"),
            sanitize_walltime: hist("sanitize"),
            sessionize_walltime: hist("sessionize"),
            detect_walltime: hist("detect"),
            totals: [
                total("ingest"),
                total("sanitize"),
                total("sessionize"),
                total("detect"),
            ],
            threads: registry.gauge(
                "quicsand_pipeline_threads",
                "Worker threads (batch) or shards (live) used",
                Stability::Volatile,
            ),
            // Volatile: per-shard peaks are summed, so the value depends
            // on the shard count, not only on the trace.
            peak_open_sessions: registry.gauge(
                "quicsand_pipeline_peak_open_sessions",
                "Sum of per-sessionizer/per-detector open-state high-water marks",
                Stability::Volatile,
            ),
        }
    }

    /// Records one shard's (or chunk's) stage walltimes into the
    /// distribution histograms. Zero-length stages still count — a
    /// too-fast-to-measure stage is an observation, not a gap.
    pub fn observe_stages(&self, stats: &PipelineStats) {
        self.observe_frontend(stats);
        self.detect_walltime.observe(ms_to_micros(stats.detect_ms));
    }

    /// Records only the frontend stages (ingest/sanitize/sessionize) —
    /// for batch shards, where detection runs once after the merge and
    /// is observed separately via [`StageMetrics::observe_detect`].
    pub fn observe_frontend(&self, stats: &PipelineStats) {
        self.ingest_walltime.observe(ms_to_micros(stats.ingest_ms));
        self.sanitize_walltime
            .observe(ms_to_micros(stats.sanitize_ms));
        self.sessionize_walltime
            .observe(ms_to_micros(stats.sessionize_ms));
    }

    /// Records a detect-stage walltime (milliseconds) on its own.
    pub fn observe_detect(&self, detect_ms: f64) {
        self.detect_walltime.observe(ms_to_micros(detect_ms));
    }

    /// Publishes end-of-run totals (gauges are last-write-wins, so this
    /// is safe to call repeatedly as a run progresses).
    pub fn set_totals(&self, stats: &PipelineStats) {
        let values = [
            stats.ingest_ms,
            stats.sanitize_ms,
            stats.sessionize_ms,
            stats.detect_ms,
        ];
        for (gauge, ms) in self.totals.iter().zip(values) {
            gauge.set(ms_to_micros(ms));
        }
        self.threads.set(stats.threads as u64);
        self.peak_open_sessions.set(stats.peak_open_sessions as u64);
    }
}

fn ms_to_micros(ms: f64) -> u64 {
    (ms * 1_000.0).round().max(0.0) as u64
}

fn delta(prev: u64, now: u64, what: &str) -> u64 {
    now.checked_sub(prev)
        .unwrap_or_else(|| panic!("monotone stats regressed: {what} {now} < {prev}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::IngestError;

    fn faked_stats() -> IngestStats {
        let mut stats = IngestStats {
            total: 100,
            quic_candidates: 40,
            quic_valid: 30,
            quic_false_positives: 10,
            tcp: 30,
            icmp: 10,
            other_udp: 5,
            ambiguous: 0,
            quarantine: QuarantineStats::default(),
        };
        stats.quarantine.record(&IngestError::Truncated);
        stats.quarantine.record(&IngestError::EmptyPayload);
        stats.quarantine.record(&IngestError::Duplicate);
        stats.quarantine.truncated += 4;
        stats.quarantine.not_quic += 4;
        // 10 false positives == truncated 5 + empty 1 + not_quic 4.
        stats
    }

    #[test]
    fn add_stats_then_verify_round_trips() {
        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        let stats = faked_stats();
        metrics.add_stats(&stats);
        metrics.verify(&stats).expect("counters reconcile");
    }

    #[test]
    fn delta_publishing_accumulates_exactly() {
        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        let mut cursor = IngestStats::default();
        let stats = faked_stats();
        // Publish in two installments through an intermediate reading.
        let mid = IngestStats {
            total: 50,
            tcp: 20,
            quarantine: QuarantineStats {
                duplicate: 1,
                ..QuarantineStats::default()
            },
            ..IngestStats::default()
        };
        metrics.add_delta(&cursor, &mid);
        cursor = mid;
        metrics.add_delta(&cursor, &stats);
        metrics.verify(&stats).expect("two-step delta reconciles");
    }

    #[test]
    fn verify_catches_divergence() {
        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        let stats = faked_stats();
        metrics.add_stats(&stats);
        metrics.records_total.inc(); // sabotage
        let errors = metrics.verify(&stats).unwrap_err();
        assert!(errors.iter().any(|e| e.starts_with("total")), "{errors:?}");
    }

    #[test]
    fn stage_metrics_convert_ms_to_micros() {
        let registry = MetricsRegistry::new();
        let stages = StageMetrics::register(&registry);
        let stats = PipelineStats {
            threads: 2,
            records: 10,
            ingest_ms: 1.5,
            sanitize_ms: 0.0,
            sessionize_ms: 0.25,
            detect_ms: 3.0,
            peak_open_sessions: 7,
            quarantined: 0,
        };
        stages.observe_stages(&stats);
        stages.set_totals(&stats);
        assert_eq!(stages.ingest_walltime.sum(), 1_500);
        assert_eq!(stages.totals[3].get(), 3_000);
        assert_eq!(stages.peak_open_sessions.get(), 7);
        assert_eq!(stages.threads.get(), 2);
        assert_eq!(stages.sanitize_walltime.count(), 1);
    }
}
