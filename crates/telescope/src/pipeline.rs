//! Capture ingestion: port filter, payload dissection, false-positive
//! rejection.
//!
//! Reproduces the paper's two-stage classification (§4.1): the
//! port-based pre-filter selects UDP/443 candidates; the payload
//! dissector (Wireshark stand-in) validates them. Non-QUIC payloads on
//! port 443 are counted and dropped, TCP/ICMP records pass through to
//! the common-protocols baseline.

use quicsand_dissect::{
    classify_record, dissect_udp_payload, Classification, Direction, DissectError, DissectedPacket,
    MessageKind,
};
use quicsand_events::{
    EventMeta, NoopSubscriber, RetryObserved, Subscriber, VersionNegotiationObserved, WireRejected,
};
use quicsand_net::{Duration, PacketRecord, Timestamp, Transport};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// One validated QUIC packet observation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuicObservation {
    /// Capture time.
    pub ts: Timestamp,
    /// Source address (scanner for requests, victim for responses).
    pub src: Ipv4Addr,
    /// Telescope address the packet hit.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Request (to 443) or response (from 443).
    pub direction: Direction,
    /// The dissected QUIC messages.
    pub dissected: DissectedPacket,
}

/// Outcome of streaming one record through
/// [`TelescopePipeline::admit`]: the validated product is handed to
/// the caller instead of being buffered, so an unbounded stream can be
/// processed in constant memory (modulo per-source guard state).
#[derive(Debug, Clone, PartialEq)]
pub enum Admitted {
    /// A validated QUIC packet (request or response).
    Quic(QuicObservation),
    /// A TCP/ICMP record passed through to the common-protocols
    /// baseline.
    Baseline(PacketRecord),
    /// Quarantined or out of scope; the reason is counted in
    /// [`IngestStats`].
    Dropped,
}

/// *Why* the ingest pipeline quarantined a record.
///
/// Real IBR contains truncated captures, garbage version fields,
/// replayed and reordered records; the pipeline classifies each
/// rejection so operators (and the fault-injection test harness) can
/// assert *which* defense caught a malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The payload ended before a structurally complete QUIC packet.
    Truncated,
    /// A long header announced a version outside the registry.
    BadVersion(u32),
    /// A connection ID length field exceeded the 20-byte maximum.
    BadCid(usize),
    /// A UDP/443 payload that is structurally not QUIC at all.
    NotQuic,
    /// A zero-length UDP/443 payload.
    EmptyPayload,
    /// Byte-identical to the previous record from the same source.
    Duplicate,
    /// Timestamp moved backwards past the reorder tolerance but within
    /// the clock-skew horizon: late delivery, not a broken clock.
    Reordered {
        /// How far behind the source's watermark the record arrived.
        backwards: Duration,
    },
    /// Timestamp moved backwards past the skew horizon: a clock reset
    /// or forged timestamps; admitting it would corrupt sessionization.
    ClockSkew {
        /// How far behind the source's watermark the record arrived.
        backwards: Duration,
    },
    /// Classification disagreed with the transport (e.g. a QUIC
    /// candidate without a UDP payload — forged capture metadata).
    TransportMismatch,
}

impl IngestError {
    /// Stable label used in reports and CLI summaries.
    pub fn label(&self) -> &'static str {
        match self {
            IngestError::Truncated => "truncated",
            IngestError::BadVersion(_) => "bad-version",
            IngestError::BadCid(_) => "bad-cid",
            IngestError::NotQuic => "not-quic",
            IngestError::EmptyPayload => "empty-payload",
            IngestError::Duplicate => "duplicate",
            IngestError::Reordered { .. } => "reordered",
            IngestError::ClockSkew { .. } => "clock-skew",
            IngestError::TransportMismatch => "transport-mismatch",
        }
    }

    /// Classifies a dissector rejection into the ingest taxonomy.
    pub fn from_dissect(error: &DissectError) -> Self {
        match error {
            DissectError::Empty => IngestError::EmptyPayload,
            DissectError::Truncated(_) => IngestError::Truncated,
            DissectError::BadVersion(v) => IngestError::BadVersion(*v),
            DissectError::BadCid(n) => IngestError::BadCid(*n),
            DissectError::NotQuic(_) => IngestError::NotQuic,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadVersion(v) => write!(f, "bad-version({v:#010x})"),
            IngestError::BadCid(n) => write!(f, "bad-cid({n})"),
            IngestError::Reordered { backwards } => write!(f, "reordered(-{backwards})"),
            IngestError::ClockSkew { backwards } => write!(f, "clock-skew(-{backwards})"),
            other => f.write_str(other.label()),
        }
    }
}

impl std::error::Error for IngestError {}

/// Per-kind quarantine counters (replaces the old `malformed` scalar).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineStats {
    /// Payloads cut short of a complete QUIC packet.
    pub truncated: u64,
    /// Unknown long-header versions.
    pub bad_version: u64,
    /// Connection ID length fields above the maximum.
    pub bad_cid: u64,
    /// Structurally non-QUIC UDP/443 payloads.
    pub not_quic: u64,
    /// Zero-length UDP/443 payloads.
    pub empty_payload: u64,
    /// Per-source byte-identical duplicates.
    pub duplicate: u64,
    /// Backwards timestamps beyond the reorder tolerance.
    pub reordered: u64,
    /// Backwards timestamps beyond the skew horizon.
    pub clock_skew: u64,
    /// Classification/transport disagreements.
    pub transport_mismatch: u64,
}

impl QuarantineStats {
    /// Counts one quarantined record.
    pub fn record(&mut self, error: &IngestError) {
        match error {
            IngestError::Truncated => self.truncated += 1,
            IngestError::BadVersion(_) => self.bad_version += 1,
            IngestError::BadCid(_) => self.bad_cid += 1,
            IngestError::NotQuic => self.not_quic += 1,
            IngestError::EmptyPayload => self.empty_payload += 1,
            IngestError::Duplicate => self.duplicate += 1,
            IngestError::Reordered { .. } => self.reordered += 1,
            IngestError::ClockSkew { .. } => self.clock_skew += 1,
            IngestError::TransportMismatch => self.transport_mismatch += 1,
        }
    }

    /// Total quarantined records across all kinds.
    pub fn total(&self) -> u64 {
        let QuarantineStats {
            truncated,
            bad_version,
            bad_cid,
            not_quic,
            empty_payload,
            duplicate,
            reordered,
            clock_skew,
            transport_mismatch,
        } = *self;
        truncated
            + bad_version
            + bad_cid
            + not_quic
            + empty_payload
            + duplicate
            + reordered
            + clock_skew
            + transport_mismatch
    }

    /// `(label, count)` rows in taxonomy order, for reports and CLI.
    pub fn as_table(&self) -> [(&'static str, u64); 9] {
        [
            ("truncated", self.truncated),
            ("bad-version", self.bad_version),
            ("bad-cid", self.bad_cid),
            ("not-quic", self.not_quic),
            ("empty-payload", self.empty_payload),
            ("duplicate", self.duplicate),
            ("reordered", self.reordered),
            ("clock-skew", self.clock_skew),
            ("transport-mismatch", self.transport_mismatch),
        ]
    }

    /// Field-wise sum.
    pub fn merge(&mut self, other: &QuarantineStats) {
        self.truncated += other.truncated;
        self.bad_version += other.bad_version;
        self.bad_cid += other.bad_cid;
        self.not_quic += other.not_quic;
        self.empty_payload += other.empty_payload;
        self.duplicate += other.duplicate;
        self.reordered += other.reordered;
        self.clock_skew += other.clock_skew;
        self.transport_mismatch += other.transport_mismatch;
    }
}

/// Ingest counters (the telescope's bookkeeping).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Total records offered.
    pub total: u64,
    /// UDP/443 candidates admitted by the port filter.
    pub quic_candidates: u64,
    /// Candidates validated by the dissector.
    pub quic_valid: u64,
    /// Candidates the dissector rejected (port-filter false positives).
    pub quic_false_positives: u64,
    /// TCP records (common-protocol baseline).
    pub tcp: u64,
    /// ICMP records (baseline).
    pub icmp: u64,
    /// UDP records on other ports (out of scope).
    pub other_udp: u64,
    /// Packets with both ports 443 (the paper observed none).
    pub ambiguous: u64,
    /// Per-kind quarantine counters: every record the pipeline dropped
    /// rather than classified, broken down by *why*.
    pub quarantine: QuarantineStats,
}

impl IngestStats {
    /// Merges another shard's counters into this one (field-wise sum).
    pub fn merge(&mut self, other: &IngestStats) {
        self.total += other.total;
        self.quic_candidates += other.quic_candidates;
        self.quic_valid += other.quic_valid;
        self.quic_false_positives += other.quic_false_positives;
        self.tcp += other.tcp;
        self.icmp += other.icmp;
        self.other_udp += other.other_udp;
        self.ambiguous += other.ambiguous;
        self.quarantine.merge(&other.quarantine);
    }
}

/// Pre-classification guard thresholds: how the pipeline treats
/// per-source timestamp regressions and duplicates before any protocol
/// work happens.
///
/// All state is **per source**, so the guard makes identical decisions
/// whether a capture is ingested sequentially or sharded by
/// `hash(src) % N` — a source's records never span shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Quarantine a record byte-identical to the previous record from
    /// the same source (replayed frames).
    pub dedup: bool,
    /// Backwards timestamp slack tolerated as in-network reordering.
    pub reorder_tolerance: Duration,
    /// Backwards jump beyond which a timestamp is treated as clock
    /// skew rather than reordering.
    pub skew_horizon: Duration,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            dedup: true,
            reorder_tolerance: Duration::from_secs(2),
            skew_horizon: Duration::from_secs(600),
        }
    }
}

/// Per-source guard state: high-water timestamp and last record hash.
#[derive(Debug, Clone, Copy)]
struct SourceGuard {
    max_ts: Timestamp,
    last_hash: u64,
}

/// One source's guard state in a [`PipelineSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardEntry {
    /// The source address.
    pub src: Ipv4Addr,
    /// High-water timestamp seen from this source.
    pub max_ts: Timestamp,
    /// [`record_hash`] fingerprint of the last record from this source.
    pub last_hash: u64,
}

/// Serializable checkpoint of the pipeline's streaming state: per-source
/// guard watermarks/duplicate hashes plus the ingest counters.
///
/// The accumulated batch products (`quic_observations`,
/// `baseline_records`) are deliberately *not* part of the snapshot — the
/// snapshot exists for the streaming path ([`TelescopePipeline::admit`]),
/// where records are handed to the caller instead of buffered and those
/// vectors stay empty. Entries are sorted by source so identical state
/// always serializes identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// Guard thresholds in effect.
    pub guard: GuardConfig,
    /// Per-source guard state, sorted by source address.
    pub guards: Vec<GuardEntry>,
    /// Ingest counters at checkpoint time.
    pub stats: IngestStats,
}

/// Wall-clock telemetry for the pipeline stages, surfaced by
/// `quicsand analyze --verbose` / `quicsand live --verbose`.
///
/// Timings vary run to run, so this struct is deliberately *not* part
/// of the deterministic analysis products (reports never include it).
/// The batch path fills `sanitize_ms`; the live path runs detection
/// incrementally and fills `sessionize_ms`/`detect_ms` with the
/// detector-offer and final-flush times instead.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Worker threads (batch) or shards (live) actually used.
    pub threads: usize,
    /// Records ingested.
    pub records: u64,
    /// Ingest stage (guard + classify + dissect) wall time, ms. In the
    /// parallel path this is the slowest shard (critical path).
    pub ingest_ms: f64,
    /// Sanitize stage (research-scanner detection + split) wall time,
    /// ms. Zero in live mode (sanitization is inherently two-pass).
    pub sanitize_ms: f64,
    /// Sessionization wall time, ms. In live mode: time spent in
    /// incremental detector offers (sessionize + threshold checks).
    pub sessionize_ms: f64,
    /// DoS inference + multi-vector correlation wall time, ms. In live
    /// mode: the end-of-stream flush (expiry + final correlation).
    pub detect_ms: f64,
    /// Sum of the sessionizers'/detectors' open-state high-water marks —
    /// an upper bound on simultaneously held per-source state, the
    /// quantity the watermark expiry (batch) or LRU cap (live) bounds.
    pub peak_open_sessions: usize,
    /// Records the ingest guard + dissector quarantined, all kinds
    /// summed (the per-kind breakdown lives in
    /// [`IngestStats::quarantine`]).
    pub quarantined: u64,
}

impl PipelineStats {
    /// Ingest throughput in records per second.
    pub fn ingest_records_per_sec(&self) -> f64 {
        if self.ingest_ms <= 0.0 {
            0.0
        } else {
            self.records as f64 / (self.ingest_ms / 1_000.0)
        }
    }

    /// Merges another shard's timings: per-stage maxima (the critical
    /// path under parallel execution) and summed peak open state.
    pub fn max_stage(&mut self, other: &PipelineStats) {
        self.ingest_ms = self.ingest_ms.max(other.ingest_ms);
        self.sanitize_ms = self.sanitize_ms.max(other.sanitize_ms);
        self.sessionize_ms = self.sessionize_ms.max(other.sessionize_ms);
        self.detect_ms = self.detect_ms.max(other.detect_ms);
        self.peak_open_sessions += other.peak_open_sessions;
    }

    /// One-line per-stage walltime summary (the `--verbose` line).
    pub fn stage_summary(&self) -> String {
        format!(
            "stages: ingest {:.1}ms / sanitize {:.1}ms / sessionize {:.1}ms / detect {:.1}ms",
            self.ingest_ms, self.sanitize_ms, self.sessionize_ms, self.detect_ms
        )
    }
}

/// Multiply-fold constants for [`record_hash`] (the two 64-bit primes
/// popularized by wyhash; any pair of odd constants with good bit
/// dispersion would do).
const HASH_C1: u64 = 0xa076_1d64_78bd_642f;
const HASH_C2: u64 = 0xe703_7ed1_a0b4_28db;

/// Folds two words through a 64×64→128-bit multiply, the core mixing
/// step of the record fingerprint.
#[inline]
fn hash_mix(a: u64, b: u64) -> u64 {
    let r = u128::from(a ^ HASH_C1) * u128::from(b ^ HASH_C2);
    (r >> 64) as u64 ^ r as u64
}

/// Build-hasher for the per-source guard map: one folded multiply over
/// the address bytes instead of the std SipHash, since the map is probed
/// once per ingested record.
#[derive(Clone, Copy, Debug, Default)]
struct SourceMapHasherBuilder;

/// Hasher state for [`SourceMapHasherBuilder`].
#[derive(Clone, Default)]
struct SourceMapHasher(u64);

impl std::hash::Hasher for SourceMapHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut lane = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            lane |= u64::from(b) << (8 * (i & 7));
        }
        self.0 = hash_mix(self.0 ^ bytes.len() as u64, lane);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::hash::BuildHasher for SourceMapHasherBuilder {
    type Hasher = SourceMapHasher;
    fn build_hasher(&self) -> SourceMapHasher {
        SourceMapHasher(0)
    }
}

/// Platform-independent fingerprint of a record (timestamp, addresses,
/// transport and payload). Used for per-source duplicate detection; two
/// records collide only if byte-identical (up to hash collisions, which
/// only ever *under*-count duplicates of faults the injector
/// deliberately made byte-identical).
///
/// The mixing function is a wyhash-style folded multiply over 8-byte
/// little-endian lanes rather than byte-at-a-time FNV-1a: this hash runs
/// once per record on the ingest hot path, where FNV's one multiply per
/// *byte* was the single largest cost. The value is an internal
/// fingerprint only — it feeds dedup decisions and checkpoint
/// round-trips, never golden artifacts — so the function can change as
/// long as it stays deterministic across platforms.
pub fn record_hash(record: &PacketRecord) -> u64 {
    // Fixed-layout prefix: timestamp, addresses, transport tag + ports
    // packed into two words.
    let ts = record.ts.as_micros();
    let src = u64::from(u32::from_be_bytes(record.src.octets()));
    let dst = u64::from(u32::from_be_bytes(record.dst.octets()));
    let mut hash = hash_mix(ts, src << 32 | dst);
    match &record.transport {
        Transport::Udp {
            src_port,
            dst_port,
            payload,
        } => {
            hash = hash_mix(
                hash,
                0x11 << 32 | u64::from(*src_port) << 16 | u64::from(*dst_port),
            );
            let bytes = payload.as_ref();
            let mut chunks = bytes.chunks_exact(8);
            for chunk in &mut chunks {
                let lane = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                hash = hash_mix(hash, lane);
            }
            let mut last = 0u64;
            for (i, &b) in chunks.remainder().iter().enumerate() {
                last |= u64::from(b) << (8 * i);
            }
            // Mix the length so prefixes of zero bytes don't collide.
            hash = hash_mix(hash ^ bytes.len() as u64, last);
        }
        Transport::Tcp {
            src_port,
            dst_port,
            flags,
        } => {
            let bits = u64::from(
                u8::from(flags.syn)
                    | u8::from(flags.ack) << 1
                    | u8::from(flags.rst) << 2
                    | u8::from(flags.fin) << 3,
            );
            hash = hash_mix(
                hash,
                0x06 << 40 | bits << 32 | u64::from(*src_port) << 16 | u64::from(*dst_port),
            );
        }
        Transport::Icmp { kind } => {
            let code = match kind {
                quicsand_net::IcmpKind::EchoRequest => 8u64,
                quicsand_net::IcmpKind::EchoReply => 0,
                quicsand_net::IcmpKind::DestUnreachable => 3,
                quicsand_net::IcmpKind::TtlExceeded => 11,
            };
            hash = hash_mix(hash, 0x01 << 40 | code << 32);
        }
    }
    hash
}

/// The telescope pipeline. Feed records in capture order; collect
/// QUIC observations and pass-through baseline records.
#[derive(Debug, Default)]
pub struct TelescopePipeline {
    guard: GuardConfig,
    guards: HashMap<Ipv4Addr, SourceGuard, SourceMapHasherBuilder>,
    stats: IngestStats,
    quic: Vec<QuicObservation>,
    baseline: Vec<PacketRecord>,
}

impl TelescopePipeline {
    /// Creates an empty pipeline with the default [`GuardConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pipeline with explicit guard thresholds.
    pub fn with_guard(guard: GuardConfig) -> Self {
        TelescopePipeline {
            guard,
            ..Self::default()
        }
    }

    /// Creates a pipeline resuming from a streaming checkpoint: guard
    /// state and counters are restored, batch buffers start empty (see
    /// [`PipelineSnapshot`]). A restored pipeline makes the exact same
    /// admit/quarantine decisions on the remaining stream as the
    /// original would have.
    pub fn restore(snapshot: &PipelineSnapshot) -> Self {
        TelescopePipeline {
            guard: snapshot.guard,
            guards: snapshot
                .guards
                .iter()
                .map(|e| {
                    (
                        e.src,
                        SourceGuard {
                            max_ts: e.max_ts,
                            last_hash: e.last_hash,
                        },
                    )
                })
                .collect(),
            stats: snapshot.stats.clone(),
            quic: Vec::new(),
            baseline: Vec::new(),
        }
    }

    /// Checkpoints the streaming state (guard config, per-source guard
    /// watermarks, counters). See [`PipelineSnapshot`] for what is and
    /// is not captured.
    pub fn snapshot(&self) -> PipelineSnapshot {
        let mut guards: Vec<GuardEntry> = self
            .guards
            .iter()
            .map(|(src, g)| GuardEntry {
                src: *src,
                max_ts: g.max_ts,
                last_hash: g.last_hash,
            })
            .collect();
        guards.sort_by_key(|e| e.src);
        PipelineSnapshot {
            guard: self.guard,
            guards,
            stats: self.stats.clone(),
        }
    }

    /// Ingests one record.
    pub fn ingest(&mut self, record: &PacketRecord) {
        self.ingest_classified(record, classify_record(record));
    }

    /// Streams one record through the guard + classifier and hands the
    /// admitted product back to the caller instead of buffering it —
    /// the live engine's entry point, sharing every guard/quarantine
    /// decision with the batch path. Counters advance identically to
    /// [`ingest`](Self::ingest); only the destination of the admitted
    /// record differs.
    pub fn admit(&mut self, record: &PacketRecord) -> Admitted {
        self.admit_classified(record, classify_record(record))
    }

    /// Runs the pre-classification guard: duplicate suppression and
    /// per-source backwards-timestamp checks. Guard state advances
    /// *unconditionally* (even for quarantined records), so the
    /// decision sequence for a source depends only on that source's
    /// record stream — the invariant behind N-shard ≡ 1-shard.
    fn guard_check(&mut self, record: &PacketRecord) -> Option<IngestError> {
        let hash = record_hash(record);
        match self.guards.entry(record.src) {
            Entry::Vacant(slot) => {
                slot.insert(SourceGuard {
                    max_ts: record.ts,
                    last_hash: hash,
                });
                None
            }
            Entry::Occupied(mut slot) => {
                let state = slot.get_mut();
                let duplicate = self.guard.dedup && state.last_hash == hash;
                let backwards = state.max_ts.saturating_since(record.ts);
                if record.ts > state.max_ts {
                    state.max_ts = record.ts;
                }
                state.last_hash = hash;
                if duplicate {
                    Some(IngestError::Duplicate)
                } else if backwards.as_micros() > self.guard.skew_horizon.as_micros() {
                    Some(IngestError::ClockSkew { backwards })
                } else if backwards.as_micros() > self.guard.reorder_tolerance.as_micros() {
                    Some(IngestError::Reordered { backwards })
                } else {
                    None
                }
            }
        }
    }

    /// Ingests one record under an externally supplied classification.
    ///
    /// This is the panic-free buffering wrapper of
    /// [`admit_classified`](Self::admit_classified): guard rejections
    /// (duplicates, backwards timestamps) and dissection failures are
    /// counted per kind in [`IngestStats::quarantine`] and dropped
    /// rather than crashing the whole run.
    pub fn ingest_classified(&mut self, record: &PacketRecord, classification: Classification) {
        match self.admit_classified(record, classification) {
            Admitted::Quic(obs) => self.quic.push(obs),
            Admitted::Baseline(record) => self.baseline.push(record),
            Admitted::Dropped => {}
        }
    }

    /// [`admit`](Self::admit) under an externally supplied
    /// classification — the shared guard/quarantine/dissection core of
    /// both execution modes.
    pub fn admit_classified(
        &mut self,
        record: &PacketRecord,
        classification: Classification,
    ) -> Admitted {
        self.admit_classified_with(
            record,
            classification,
            &EventMeta::lifecycle(),
            &mut NoopSubscriber,
        )
    }

    /// [`admit`](Self::admit) with typed-event emission: quarantine
    /// decisions surface as `wire_rejected`, dissected Retry / Version
    /// Negotiation packets as their observation events. With
    /// [`NoopSubscriber`] this monomorphizes to exactly
    /// [`admit`](Self::admit) — the subscriber-free hot path carries no
    /// event code.
    pub fn admit_with<S: Subscriber>(
        &mut self,
        record: &PacketRecord,
        meta: &EventMeta,
        subscriber: &mut S,
    ) -> Admitted {
        self.admit_classified_with(record, classify_record(record), meta, subscriber)
    }

    /// The shared core behind both [`admit_classified`] and
    /// [`admit_with`]: guard → classification → dissection, with every
    /// quarantine and Retry/VN sighting mirrored to `subscriber`.
    ///
    /// [`admit_classified`]: Self::admit_classified
    /// [`admit_with`]: Self::admit_with
    pub fn admit_classified_with<S: Subscriber>(
        &mut self,
        record: &PacketRecord,
        classification: Classification,
        meta: &EventMeta,
        subscriber: &mut S,
    ) -> Admitted {
        self.stats.total += 1;
        if let Some(error) = self.guard_check(record) {
            self.stats.quarantine.record(&error);
            if subscriber.enabled() {
                subscriber.on_wire_rejected(
                    meta,
                    &WireRejected {
                        at: record.ts,
                        reason: error.label().to_string(),
                    },
                );
            }
            return Admitted::Dropped;
        }
        match classification {
            Classification::QuicCandidate(direction) => {
                self.stats.quic_candidates += 1;
                let (payload, src_port, dst_port) = match (
                    record.udp_payload(),
                    record.transport.src_port(),
                    record.transport.dst_port(),
                ) {
                    (Some(payload), Some(src_port), Some(dst_port)) => {
                        (payload, src_port, dst_port)
                    }
                    _ => {
                        // Classification disagrees with the transport:
                        // degrade gracefully instead of panicking.
                        self.stats
                            .quarantine
                            .record(&IngestError::TransportMismatch);
                        if subscriber.enabled() {
                            subscriber.on_wire_rejected(
                                meta,
                                &WireRejected {
                                    at: record.ts,
                                    reason: IngestError::TransportMismatch.label().to_string(),
                                },
                            );
                        }
                        return Admitted::Dropped;
                    }
                };
                match dissect_udp_payload(payload) {
                    Ok(dissected) => {
                        self.stats.quic_valid += 1;
                        if subscriber.enabled() {
                            if dissected.has_retry() {
                                subscriber.on_retry_observed(
                                    meta,
                                    &RetryObserved {
                                        at: record.ts,
                                        src: record.src,
                                        dst: record.dst,
                                    },
                                );
                            }
                            if dissected
                                .messages
                                .iter()
                                .any(|m| m.kind == MessageKind::VersionNegotiation)
                            {
                                subscriber.on_version_negotiation(
                                    meta,
                                    &VersionNegotiationObserved {
                                        at: record.ts,
                                        src: record.src,
                                        dst: record.dst,
                                    },
                                );
                            }
                        }
                        Admitted::Quic(QuicObservation {
                            ts: record.ts,
                            src: record.src,
                            dst: record.dst,
                            src_port,
                            dst_port,
                            direction,
                            dissected,
                        })
                    }
                    Err(error) => {
                        // Every dissector rejection remains a port-filter
                        // false positive (the paper's §4.1 scalar); the
                        // quarantine taxonomy is the finer breakdown.
                        self.stats.quic_false_positives += 1;
                        let ingest_error = IngestError::from_dissect(&error);
                        self.stats.quarantine.record(&ingest_error);
                        if subscriber.enabled() {
                            subscriber.on_wire_rejected(
                                meta,
                                &WireRejected {
                                    at: record.ts,
                                    reason: ingest_error.label().to_string(),
                                },
                            );
                        }
                        Admitted::Dropped
                    }
                }
            }
            Classification::Tcp => {
                self.stats.tcp += 1;
                Admitted::Baseline(record.clone())
            }
            Classification::Icmp => {
                self.stats.icmp += 1;
                Admitted::Baseline(record.clone())
            }
            Classification::OtherUdp => {
                self.stats.other_udp += 1;
                Admitted::Dropped
            }
            Classification::AmbiguousBothPorts => {
                self.stats.ambiguous += 1;
                Admitted::Dropped
            }
        }
    }

    /// Ingests a whole capture.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a PacketRecord>>(&mut self, records: I) {
        for record in records {
            self.ingest(record);
        }
    }

    /// Ingests one decoded batch, the hand-off unit produced by the
    /// zero-copy capture reader. Equivalent to [`ingest_all`] over the
    /// slice — batching changes the call granularity, never the
    /// counters or the products.
    ///
    /// [`ingest_all`]: Self::ingest_all
    pub fn ingest_batch(&mut self, batch: &[PacketRecord]) {
        for record in batch {
            self.ingest(record);
        }
    }

    /// The counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The validated QUIC observations, in capture order.
    pub fn quic_observations(&self) -> &[QuicObservation] {
        &self.quic
    }

    /// TCP/ICMP baseline records, in capture order.
    pub fn baseline_records(&self) -> &[PacketRecord] {
        &self.baseline
    }

    /// Consumes the pipeline, returning observations and baseline.
    pub fn finish(self) -> (Vec<QuicObservation>, Vec<PacketRecord>, IngestStats) {
        (self.quic, self.baseline, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use quicsand_net::{IcmpKind, TcpFlags};
    use quicsand_traffic::research::research_probe_payload;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    fn quic_record(ts: u64) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::from_secs(ts),
            ip(1),
            ip(2),
            40_000,
            443,
            research_probe_payload(ts),
        )
    }

    #[test]
    fn valid_quic_admitted() {
        let mut p = TelescopePipeline::new();
        p.ingest(&quic_record(1));
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().quic_valid, 1);
        assert_eq!(p.stats().quic_false_positives, 0);
        let obs = &p.quic_observations()[0];
        assert_eq!(obs.direction, Direction::Request);
        assert_eq!(obs.dst_port, 443);
        assert!(!obs.dissected.messages.is_empty());
    }

    #[test]
    fn garbage_on_443_counted_as_false_positive() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            40_000,
            443,
            Bytes::from_static(&[0x12, 0x34, 0x00]),
        ));
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().quic_valid, 0);
        assert_eq!(p.stats().quic_false_positives, 1);
        assert!(p.quic_observations().is_empty());
    }

    #[test]
    fn baseline_passthrough() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::tcp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            443,
            5000,
            TcpFlags::SYN_ACK,
        ));
        p.ingest(&PacketRecord::icmp(
            Timestamp::from_secs(2),
            ip(1),
            ip(2),
            IcmpKind::EchoReply,
        ));
        assert_eq!(p.stats().tcp, 1);
        assert_eq!(p.stats().icmp, 1);
        assert_eq!(p.baseline_records().len(), 2);
        assert!(p.quic_observations().is_empty());
    }

    #[test]
    fn other_udp_dropped() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            53,
            53,
            Bytes::from_static(b"dns"),
        ));
        assert_eq!(p.stats().other_udp, 1);
        assert_eq!(p.stats().quic_candidates, 0);
    }

    #[test]
    fn ingest_all_and_finish() {
        let mut p = TelescopePipeline::new();
        let records = vec![quic_record(1), quic_record(2)];
        p.ingest_all(&records);
        let (quic, baseline, stats) = p.finish();
        assert_eq!(quic.len(), 2);
        assert!(baseline.is_empty());
        assert_eq!(stats.total, 2);
    }

    #[test]
    fn batched_ingest_is_equivalent_to_record_at_a_time() {
        let records = vec![quic_record(1), quic_record(2), quic_record(3)];
        let mut streamed = TelescopePipeline::new();
        streamed.ingest_all(&records);
        let mut batched = TelescopePipeline::new();
        for batch in records.chunks(2) {
            batched.ingest_batch(batch);
        }
        assert_eq!(batched.stats(), streamed.stats());
        assert_eq!(batched.finish().0, streamed.finish().0);
    }

    #[test]
    fn forged_quic_classification_on_non_udp_record_is_quarantined_not_panic() {
        // A corrupt capture can mislabel a record: here an ICMP record
        // arrives with a QUIC-candidate classification. The pipeline
        // must quarantine it as a transport mismatch and keep going —
        // the seed version panicked on `udp_payload().expect(..)`.
        let mut p = TelescopePipeline::new();
        let icmp = PacketRecord::icmp(Timestamp::from_secs(1), ip(1), ip(2), IcmpKind::EchoReply);
        p.ingest_classified(&icmp, Classification::QuicCandidate(Direction::Request));
        assert_eq!(p.stats().total, 1);
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().quarantine.transport_mismatch, 1);
        assert_eq!(p.stats().quarantine.total(), 1);
        assert_eq!(p.stats().quic_valid, 0);
        assert_eq!(p.stats().quic_false_positives, 0);
        assert!(p.quic_observations().is_empty());

        // A well-formed record afterwards is still processed normally.
        p.ingest(&quic_record(2));
        assert_eq!(p.stats().quic_valid, 1);
        assert_eq!(p.quic_observations().len(), 1);
    }

    #[test]
    fn ingest_stats_merge_sums_fields() {
        let mut a = IngestStats {
            total: 3,
            quic_candidates: 2,
            quic_valid: 1,
            quic_false_positives: 1,
            tcp: 1,
            ..IngestStats::default()
        };
        let b = IngestStats {
            total: 4,
            icmp: 2,
            other_udp: 1,
            ambiguous: 1,
            quarantine: QuarantineStats {
                truncated: 1,
                duplicate: 2,
                ..QuarantineStats::default()
            },
            ..IngestStats::default()
        };
        a.merge(&b);
        assert_eq!(a.total, 7);
        assert_eq!(a.quic_candidates, 2);
        assert_eq!(a.icmp, 2);
        assert_eq!(a.quarantine.truncated, 1);
        assert_eq!(a.quarantine.duplicate, 2);
        assert_eq!(a.quarantine.total(), 3);
    }

    #[test]
    fn duplicate_record_quarantined_per_source() {
        let mut p = TelescopePipeline::new();
        let record = quic_record(1);
        p.ingest(&record);
        p.ingest(&record); // byte-identical replay
        assert_eq!(p.stats().quarantine.duplicate, 1);
        assert_eq!(p.stats().quic_valid, 1);
        // A different source sending the same bytes is NOT a duplicate.
        let mut other = record.clone();
        other.src = ip(77);
        p.ingest(&other);
        assert_eq!(p.stats().quarantine.duplicate, 1);
        assert_eq!(p.stats().quic_valid, 2);
    }

    #[test]
    fn dedup_can_be_disabled() {
        let mut p = TelescopePipeline::with_guard(GuardConfig {
            dedup: false,
            ..GuardConfig::default()
        });
        let record = quic_record(1);
        p.ingest(&record);
        p.ingest(&record);
        assert_eq!(p.stats().quarantine.duplicate, 0);
        assert_eq!(p.stats().quic_valid, 2);
    }

    #[test]
    fn backwards_timestamps_reordered_vs_clock_skew() {
        let guard = GuardConfig::default();
        let mut p = TelescopePipeline::new();
        p.ingest(&quic_record(1_000));
        // Within tolerance: admitted.
        p.ingest(&quic_record(999));
        assert_eq!(p.stats().quarantine.total(), 0);
        assert_eq!(p.stats().quic_valid, 2);
        // Past tolerance, within horizon: reordered.
        p.ingest(&quic_record(1_000 - guard.reorder_tolerance.as_secs() - 1));
        assert_eq!(p.stats().quarantine.reordered, 1);
        // Past the horizon: clock skew.
        p.ingest(&quic_record(1_000 - guard.skew_horizon.as_secs() - 1));
        assert_eq!(p.stats().quarantine.clock_skew, 1);
        // The watermark did not move backwards: a fresh in-order record
        // is still admitted.
        p.ingest(&quic_record(1_001));
        assert_eq!(p.stats().quic_valid, 3);
        assert_eq!(p.stats().quarantine.total(), 2);
    }

    #[test]
    fn quarantined_dissect_failures_count_as_false_positives_too() {
        let mut p = TelescopePipeline::new();
        // Empty UDP/443 payload.
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            40_000,
            443,
            Bytes::new(),
        ));
        assert_eq!(p.stats().quarantine.empty_payload, 1);
        assert_eq!(p.stats().quic_false_positives, 1);
    }

    #[test]
    fn ingest_error_labels_are_stable() {
        assert_eq!(IngestError::Truncated.label(), "truncated");
        assert_eq!(IngestError::BadVersion(7).label(), "bad-version");
        assert_eq!(IngestError::TransportMismatch.label(), "transport-mismatch");
        let table = QuarantineStats::default().as_table();
        assert_eq!(table.len(), 9);
        assert_eq!(table[0].0, "truncated");
        assert_eq!(format!("{}", IngestError::BadCid(21)), "bad-cid(21)");
    }

    #[test]
    fn record_hash_distinguishes_fields() {
        let a = quic_record(1);
        assert_eq!(record_hash(&a), record_hash(&a.clone()));
        assert_ne!(record_hash(&a), record_hash(&quic_record(2)));
        let mut b = a.clone();
        b.dst = ip(200);
        assert_ne!(record_hash(&a), record_hash(&b));
    }

    #[test]
    fn response_direction_detected() {
        let mut p = TelescopePipeline::new();
        // A response: source port 443. Use a server-style payload.
        let mut builder = quicsand_traffic::backscatter::BackscatterBuilder::new(
            quicsand_intel::Provider::Google,
            quicsand_wire::Version::Draft29.to_wire(),
            7,
        );
        let response = builder.respond();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(9),
            ip(2),
            443,
            5555,
            response.datagrams[0].clone(),
        ));
        let obs = &p.quic_observations()[0];
        assert_eq!(obs.direction, Direction::Response);
        assert!(!obs.dissected.messages[0].has_client_hello);
    }
}
