//! Capture ingestion: port filter, payload dissection, false-positive
//! rejection.
//!
//! Reproduces the paper's two-stage classification (§4.1): the
//! port-based pre-filter selects UDP/443 candidates; the payload
//! dissector (Wireshark stand-in) validates them. Non-QUIC payloads on
//! port 443 are counted and dropped, TCP/ICMP records pass through to
//! the common-protocols baseline.

use quicsand_dissect::{
    classify_record, dissect_udp_payload, Classification, Direction, DissectedPacket,
};
use quicsand_net::{PacketRecord, Timestamp};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One validated QUIC packet observation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuicObservation {
    /// Capture time.
    pub ts: Timestamp,
    /// Source address (scanner for requests, victim for responses).
    pub src: Ipv4Addr,
    /// Telescope address the packet hit.
    pub dst: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Request (to 443) or response (from 443).
    pub direction: Direction,
    /// The dissected QUIC messages.
    pub dissected: DissectedPacket,
}

/// Ingest counters (the telescope's bookkeeping).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Total records offered.
    pub total: u64,
    /// UDP/443 candidates admitted by the port filter.
    pub quic_candidates: u64,
    /// Candidates validated by the dissector.
    pub quic_valid: u64,
    /// Candidates the dissector rejected (port-filter false positives).
    pub quic_false_positives: u64,
    /// TCP records (common-protocol baseline).
    pub tcp: u64,
    /// ICMP records (baseline).
    pub icmp: u64,
    /// UDP records on other ports (out of scope).
    pub other_udp: u64,
    /// Packets with both ports 443 (the paper observed none).
    pub ambiguous: u64,
    /// Records whose classification disagreed with their transport
    /// (e.g. a QUIC candidate without a UDP payload). Real captures
    /// contain truncated or corrupt records; the pipeline drops them
    /// instead of panicking.
    pub malformed: u64,
}

impl IngestStats {
    /// Merges another shard's counters into this one (field-wise sum).
    pub fn merge(&mut self, other: &IngestStats) {
        self.total += other.total;
        self.quic_candidates += other.quic_candidates;
        self.quic_valid += other.quic_valid;
        self.quic_false_positives += other.quic_false_positives;
        self.tcp += other.tcp;
        self.icmp += other.icmp;
        self.other_udp += other.other_udp;
        self.ambiguous += other.ambiguous;
        self.malformed += other.malformed;
    }
}

/// The telescope pipeline. Feed records in capture order; collect
/// QUIC observations and pass-through baseline records.
#[derive(Debug, Default)]
pub struct TelescopePipeline {
    stats: IngestStats,
    quic: Vec<QuicObservation>,
    baseline: Vec<PacketRecord>,
}

impl TelescopePipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one record.
    pub fn ingest(&mut self, record: &PacketRecord) {
        self.ingest_classified(record, classify_record(record));
    }

    /// Ingests one record under an externally supplied classification.
    ///
    /// This is the panic-free core of [`ingest`](Self::ingest): if the
    /// classification claims a QUIC candidate but the record lacks a
    /// UDP payload or ports (truncated capture, forged metadata), the
    /// record is counted in [`IngestStats::malformed`] and dropped
    /// rather than crashing the whole run.
    pub fn ingest_classified(&mut self, record: &PacketRecord, classification: Classification) {
        self.stats.total += 1;
        match classification {
            Classification::QuicCandidate(direction) => {
                self.stats.quic_candidates += 1;
                let (payload, src_port, dst_port) = match (
                    record.udp_payload(),
                    record.transport.src_port(),
                    record.transport.dst_port(),
                ) {
                    (Some(payload), Some(src_port), Some(dst_port)) => {
                        (payload, src_port, dst_port)
                    }
                    _ => {
                        // Classification disagrees with the transport:
                        // degrade gracefully instead of panicking.
                        self.stats.malformed += 1;
                        return;
                    }
                };
                match dissect_udp_payload(payload) {
                    Ok(dissected) => {
                        self.stats.quic_valid += 1;
                        self.quic.push(QuicObservation {
                            ts: record.ts,
                            src: record.src,
                            dst: record.dst,
                            src_port,
                            dst_port,
                            direction,
                            dissected,
                        });
                    }
                    Err(_) => {
                        self.stats.quic_false_positives += 1;
                    }
                }
            }
            Classification::Tcp => {
                self.stats.tcp += 1;
                self.baseline.push(record.clone());
            }
            Classification::Icmp => {
                self.stats.icmp += 1;
                self.baseline.push(record.clone());
            }
            Classification::OtherUdp => self.stats.other_udp += 1,
            Classification::AmbiguousBothPorts => self.stats.ambiguous += 1,
        }
    }

    /// Ingests a whole capture.
    pub fn ingest_all<'a, I: IntoIterator<Item = &'a PacketRecord>>(&mut self, records: I) {
        for record in records {
            self.ingest(record);
        }
    }

    /// The counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The validated QUIC observations, in capture order.
    pub fn quic_observations(&self) -> &[QuicObservation] {
        &self.quic
    }

    /// TCP/ICMP baseline records, in capture order.
    pub fn baseline_records(&self) -> &[PacketRecord] {
        &self.baseline
    }

    /// Consumes the pipeline, returning observations and baseline.
    pub fn finish(self) -> (Vec<QuicObservation>, Vec<PacketRecord>, IngestStats) {
        (self.quic, self.baseline, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use quicsand_net::{IcmpKind, TcpFlags};
    use quicsand_traffic::research::research_probe_payload;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    fn quic_record(ts: u64) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::from_secs(ts),
            ip(1),
            ip(2),
            40_000,
            443,
            research_probe_payload(ts),
        )
    }

    #[test]
    fn valid_quic_admitted() {
        let mut p = TelescopePipeline::new();
        p.ingest(&quic_record(1));
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().quic_valid, 1);
        assert_eq!(p.stats().quic_false_positives, 0);
        let obs = &p.quic_observations()[0];
        assert_eq!(obs.direction, Direction::Request);
        assert_eq!(obs.dst_port, 443);
        assert!(!obs.dissected.messages.is_empty());
    }

    #[test]
    fn garbage_on_443_counted_as_false_positive() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            40_000,
            443,
            Bytes::from_static(&[0x12, 0x34, 0x00]),
        ));
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().quic_valid, 0);
        assert_eq!(p.stats().quic_false_positives, 1);
        assert!(p.quic_observations().is_empty());
    }

    #[test]
    fn baseline_passthrough() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::tcp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            443,
            5000,
            TcpFlags::SYN_ACK,
        ));
        p.ingest(&PacketRecord::icmp(
            Timestamp::from_secs(2),
            ip(1),
            ip(2),
            IcmpKind::EchoReply,
        ));
        assert_eq!(p.stats().tcp, 1);
        assert_eq!(p.stats().icmp, 1);
        assert_eq!(p.baseline_records().len(), 2);
        assert!(p.quic_observations().is_empty());
    }

    #[test]
    fn other_udp_dropped() {
        let mut p = TelescopePipeline::new();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(1),
            ip(2),
            53,
            53,
            Bytes::from_static(b"dns"),
        ));
        assert_eq!(p.stats().other_udp, 1);
        assert_eq!(p.stats().quic_candidates, 0);
    }

    #[test]
    fn ingest_all_and_finish() {
        let mut p = TelescopePipeline::new();
        let records = vec![quic_record(1), quic_record(2)];
        p.ingest_all(&records);
        let (quic, baseline, stats) = p.finish();
        assert_eq!(quic.len(), 2);
        assert!(baseline.is_empty());
        assert_eq!(stats.total, 2);
    }

    #[test]
    fn forged_quic_classification_on_non_udp_record_is_malformed_not_panic() {
        // A corrupt capture can mislabel a record: here an ICMP record
        // arrives with a QUIC-candidate classification. The pipeline
        // must count it as malformed and keep going — the seed
        // version panicked on `udp_payload().expect(..)`.
        let mut p = TelescopePipeline::new();
        let icmp = PacketRecord::icmp(Timestamp::from_secs(1), ip(1), ip(2), IcmpKind::EchoReply);
        p.ingest_classified(&icmp, Classification::QuicCandidate(Direction::Request));
        assert_eq!(p.stats().total, 1);
        assert_eq!(p.stats().quic_candidates, 1);
        assert_eq!(p.stats().malformed, 1);
        assert_eq!(p.stats().quic_valid, 0);
        assert_eq!(p.stats().quic_false_positives, 0);
        assert!(p.quic_observations().is_empty());

        // A well-formed record afterwards is still processed normally.
        p.ingest(&quic_record(2));
        assert_eq!(p.stats().quic_valid, 1);
        assert_eq!(p.quic_observations().len(), 1);
    }

    #[test]
    fn ingest_stats_merge_sums_fields() {
        let mut a = IngestStats {
            total: 3,
            quic_candidates: 2,
            quic_valid: 1,
            quic_false_positives: 1,
            tcp: 1,
            ..IngestStats::default()
        };
        let b = IngestStats {
            total: 4,
            icmp: 2,
            other_udp: 1,
            ambiguous: 1,
            malformed: 1,
            ..IngestStats::default()
        };
        a.merge(&b);
        assert_eq!(a.total, 7);
        assert_eq!(a.quic_candidates, 2);
        assert_eq!(a.icmp, 2);
        assert_eq!(a.malformed, 1);
    }

    #[test]
    fn response_direction_detected() {
        let mut p = TelescopePipeline::new();
        // A response: source port 443. Use a server-style payload.
        let mut builder = quicsand_traffic::backscatter::BackscatterBuilder::new(
            quicsand_intel::Provider::Google,
            quicsand_wire::Version::Draft29.to_wire(),
            7,
        );
        let response = builder.respond();
        p.ingest(&PacketRecord::udp(
            Timestamp::from_secs(1),
            ip(9),
            ip(2),
            443,
            5555,
            response.datagrams[0].clone(),
        ));
        let obs = &p.quic_observations()[0];
        assert_eq!(obs.direction, Direction::Response);
        assert!(!obs.dissected.messages[0].has_client_hello);
    }
}
