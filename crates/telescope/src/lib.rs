//! # quicsand-telescope
//!
//! The telescope-side processing pipeline (§4 of the paper):
//!
//! 1. ingest captured records ([`pipeline`]): port-filter, dissect,
//!    reject false positives — producing per-packet QUIC observations;
//! 2. identify and remove research scanners ([`filter`]) — the Fig. 2
//!    sanitization step;
//! 3. bin observations over time ([`binning`]) — the Figs. 2/3 hourly
//!    series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod filter;
pub mod pipeline;

pub use binning::HourlySeries;
pub use filter::ResearchFilter;
pub use pipeline::{IngestStats, QuicObservation, TelescopePipeline};
