//! # quicsand-telescope
//!
//! The telescope-side processing pipeline (§4 of the paper):
//!
//! 1. ingest captured records ([`pipeline`]): port-filter, dissect,
//!    reject false positives — producing per-packet QUIC observations;
//! 2. identify and remove research scanners ([`filter`]) — the Fig. 2
//!    sanitization step;
//! 3. bin observations over time ([`binning`]) — the Figs. 2/3 hourly
//!    series.
//!
//! For multi-core captures, [`parallel`] shards the ingest by
//! `hash(src) % N` across scoped worker threads with a deterministic
//! merge — byte-identical output at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod filter;
pub mod metrics;
pub mod parallel;
pub mod pipeline;

pub use binning::HourlySeries;
pub use filter::ResearchFilter;
pub use metrics::{IngestMetrics, QuarantineMetrics, StageMetrics};
pub use parallel::{ingest_parallel, ingest_parallel_with, shard_of};
pub use pipeline::{
    record_hash, Admitted, GuardConfig, IngestError, IngestStats, PipelineSnapshot, PipelineStats,
    QuarantineStats, QuicObservation, TelescopePipeline,
};
