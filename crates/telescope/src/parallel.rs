//! Sharded parallel ingest: `hash(src) % N` partitioning across scoped
//! worker threads, with a deterministic capture-order merge.
//!
//! The telescope's per-packet work (classification + dissection) and
//! all per-source state (sessionization, research-scanner detection)
//! depend only on the *source* address, so partitioning records by a
//! hash of `src` lets N workers run the full per-shard pipeline
//! independently and still produce byte-identical output after the
//! merge:
//!
//! * every output is tagged with its original record index, so sorting
//!   the concatenated shard outputs by index restores exact capture
//!   order regardless of thread scheduling;
//! * all counters are commutative sums.
//!
//! The shard function is FNV-1a over the source octets — a fixed,
//! platform-independent hash (unlike [`std::collections::hash_map::DefaultHasher`],
//! whose output is unspecified across releases), so a given capture
//! shards identically everywhere.

use crate::pipeline::{GuardConfig, IngestStats, QuicObservation, TelescopePipeline};
use quicsand_net::PacketRecord;
use std::net::Ipv4Addr;

/// Shard index for a source address: FNV-1a over the four octets,
/// reduced mod `shards`. `shards == 0` is treated as 1.
pub fn shard_of(src: Ipv4Addr, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in src.octets() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Partitions record indices into `shards` buckets by source shard.
/// Within each bucket the indices remain in capture order.
pub fn partition_by_source(records: &[PacketRecord], shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.max(1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
    // Pre-size: uniform hash → roughly equal buckets.
    let hint = records.len() / shards + 1;
    for bucket in &mut buckets {
        bucket.reserve(hint);
    }
    for (index, record) in records.iter().enumerate() {
        buckets[shard_of(record.src, shards)].push(index);
    }
    buckets
}

/// One shard's ingest products. `quic_index[i]` / `baseline_index[i]`
/// is the original capture index of `quic[i]` / `baseline[i]`.
#[derive(Debug, Default)]
pub struct ShardIngest {
    /// Validated QUIC observations (shard-local capture order).
    pub quic: Vec<QuicObservation>,
    /// Original record index of each element of `quic`.
    pub quic_index: Vec<usize>,
    /// TCP/ICMP baseline records (shard-local capture order).
    pub baseline: Vec<PacketRecord>,
    /// Original record index of each element of `baseline`.
    pub baseline_index: Vec<usize>,
    /// This shard's counters.
    pub stats: IngestStats,
}

/// Runs the sequential ingest over one shard's record indices with the
/// default [`GuardConfig`].
pub fn ingest_shard(records: &[PacketRecord], indices: &[usize]) -> ShardIngest {
    ingest_shard_with(records, indices, GuardConfig::default())
}

/// Runs the sequential ingest over one shard's record indices, tagging
/// every product with its original capture index.
///
/// Guard state (per-source watermarks, duplicate hashes) lives inside
/// the shard's pipeline; because shards partition records *by source*,
/// the guard sees exactly the same per-source record sequence as a
/// sequential run, so quarantine decisions are shard-count-invariant.
pub fn ingest_shard_with(
    records: &[PacketRecord],
    indices: &[usize],
    guard: GuardConfig,
) -> ShardIngest {
    let mut pipeline = TelescopePipeline::with_guard(guard);
    let mut quic_index = Vec::new();
    let mut baseline_index = Vec::new();
    for &index in indices {
        let before_quic = pipeline.quic_observations().len();
        let before_baseline = pipeline.baseline_records().len();
        pipeline.ingest(&records[index]);
        if pipeline.quic_observations().len() > before_quic {
            quic_index.push(index);
        }
        if pipeline.baseline_records().len() > before_baseline {
            baseline_index.push(index);
        }
    }
    let (quic, baseline, stats) = pipeline.finish();
    debug_assert_eq!(quic.len(), quic_index.len());
    debug_assert_eq!(baseline.len(), baseline_index.len());
    ShardIngest {
        quic,
        quic_index,
        baseline,
        baseline_index,
        stats,
    }
}

/// Merges per-shard ingest outputs back into exact capture order.
///
/// Equivalent to `TelescopePipeline::finish()` after a sequential
/// `ingest_all` over the same records, whatever the shard count.
pub fn merge_shards(
    shards: Vec<ShardIngest>,
) -> (Vec<QuicObservation>, Vec<PacketRecord>, IngestStats) {
    let mut stats = IngestStats::default();
    let mut quic: Vec<(usize, QuicObservation)> = Vec::new();
    let mut baseline: Vec<(usize, PacketRecord)> = Vec::new();
    for shard in shards {
        stats.merge(&shard.stats);
        quic.extend(shard.quic_index.into_iter().zip(shard.quic));
        baseline.extend(shard.baseline_index.into_iter().zip(shard.baseline));
    }
    // Indices are unique, so the unstable sort is deterministic.
    quic.sort_unstable_by_key(|(index, _)| *index);
    baseline.sort_unstable_by_key(|(index, _)| *index);
    (
        quic.into_iter().map(|(_, obs)| obs).collect(),
        baseline.into_iter().map(|(_, record)| record).collect(),
        stats,
    )
}

/// Ingests a capture across `threads` scoped worker threads and merges
/// the shards deterministically.
///
/// `threads <= 1` runs the exact sequential [`TelescopePipeline`]
/// path. Output is byte-identical at any thread count.
pub fn ingest_parallel(
    records: &[PacketRecord],
    threads: usize,
) -> (Vec<QuicObservation>, Vec<PacketRecord>, IngestStats) {
    ingest_parallel_with(records, threads, GuardConfig::default())
}

/// [`ingest_parallel`] with explicit guard thresholds.
pub fn ingest_parallel_with(
    records: &[PacketRecord],
    threads: usize,
    guard: GuardConfig,
) -> (Vec<QuicObservation>, Vec<PacketRecord>, IngestStats) {
    if threads <= 1 {
        let mut pipeline = TelescopePipeline::with_guard(guard);
        pipeline.ingest_all(records);
        return pipeline.finish();
    }
    let buckets = partition_by_source(records, threads);
    let shards = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|indices| scope.spawn(move |_| ingest_shard_with(records, indices, guard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("ingest scope panicked");
    merge_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use quicsand_net::{IcmpKind, TcpFlags, Timestamp};
    use quicsand_traffic::research::research_probe_payload;

    fn mixed_capture(n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let src = Ipv4Addr::from(0x0a00_0000 + (i % 251) as u32 * 7);
                let dst = Ipv4Addr::new(192, 0, 2, (i % 200) as u8);
                let ts = Timestamp::from_secs(i);
                match i % 5 {
                    0 => PacketRecord::udp(ts, src, dst, 40_000, 443, research_probe_payload(i)),
                    1 => PacketRecord::tcp(ts, src, dst, 443, 5_000, TcpFlags::SYN_ACK),
                    2 => PacketRecord::icmp(ts, src, dst, IcmpKind::EchoReply),
                    3 => PacketRecord::udp(
                        ts,
                        src,
                        dst,
                        40_000,
                        443,
                        Bytes::from_static(&[0x12, 0x34, 0x00]),
                    ),
                    _ => PacketRecord::udp(ts, src, dst, 53, 53, Bytes::from_static(b"dns")),
                }
            })
            .collect()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let src = Ipv4Addr::new(10, 1, 2, 3);
        for shards in 1..16 {
            let s = shard_of(src, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(src, shards), "deterministic");
        }
        assert_eq!(shard_of(src, 0), 0);
        assert_eq!(shard_of(src, 1), 0);
    }

    #[test]
    fn shard_of_spreads_sources() {
        // 256 distinct sources over 8 shards: no shard should be empty
        // or hold more than half of everything.
        let mut counts = [0usize; 8];
        for last in 0..=255u8 {
            counts[shard_of(Ipv4Addr::new(198, 51, 100, last), 8)] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(*count > 0, "shard {shard} empty");
            assert!(*count < 128, "shard {shard} holds {count}/256");
        }
    }

    #[test]
    fn partition_covers_every_record_once() {
        let records = mixed_capture(500);
        let buckets = partition_by_source(&records, 4);
        let mut seen: Vec<usize> = buckets.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..records.len()).collect::<Vec<_>>());
        // Capture order within each bucket.
        for bucket in &buckets {
            assert!(bucket.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parallel_ingest_matches_sequential_exactly() {
        let records = mixed_capture(1_000);
        let mut sequential = TelescopePipeline::new();
        sequential.ingest_all(&records);
        let (seq_quic, seq_baseline, seq_stats) = sequential.finish();
        for threads in [1usize, 2, 3, 8] {
            let (quic, baseline, stats) = ingest_parallel(&records, threads);
            assert_eq!(quic, seq_quic, "quic mismatch at {threads} threads");
            assert_eq!(
                baseline, seq_baseline,
                "baseline mismatch at {threads} threads"
            );
            assert_eq!(stats, seq_stats, "stats mismatch at {threads} threads");
        }
    }

    #[test]
    fn merge_restores_capture_order() {
        let records = mixed_capture(200);
        let buckets = partition_by_source(&records, 3);
        let shards: Vec<ShardIngest> = buckets
            .iter()
            .map(|indices| ingest_shard(&records, indices))
            .collect();
        let (quic, baseline, stats) = merge_shards(shards);
        assert!(quic.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(baseline.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert_eq!(stats.total, records.len() as u64);
    }
}
