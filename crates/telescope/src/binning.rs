//! Time binning for the hourly series of Figs. 2 and 3.

use quicsand_net::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An hourly counter series over the measurement period.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HourlySeries {
    counts: BTreeMap<u64, u64>,
}

impl HourlySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event at `ts`.
    pub fn add(&mut self, ts: Timestamp) {
        *self.counts.entry(ts.hour_bucket()).or_default() += 1;
    }

    /// Adds `n` events at `ts`.
    pub fn add_n(&mut self, ts: Timestamp, n: u64) {
        *self.counts.entry(ts.hour_bucket()).or_default() += n;
    }

    /// Count in a specific hour bucket.
    pub fn get(&self, hour: u64) -> u64 {
        self.counts.get(&hour).copied().unwrap_or(0)
    }

    /// Merges another series into this one (bucket-wise sum) — used
    /// to combine per-shard series from the parallel pipeline.
    pub fn merge(&mut self, other: &HourlySeries) {
        for (&hour, &count) in &other.counts {
            *self.counts.entry(hour).or_default() += count;
        }
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// `(hour, count)` rows for every hour in `0..hours`, including
    /// empty ones (plots need the zeros).
    pub fn dense(&self, hours: u64) -> Vec<(u64, u64)> {
        (0..hours).map(|h| (h, self.get(h))).collect()
    }

    /// Mean count per hour-of-day (0–23) over a measurement period of
    /// `hours` hours — the Fig. 3 insert profile.
    ///
    /// The divisor for each slot is the number of times that
    /// hour-of-day *occurs in the period*, not the number of non-empty
    /// buckets: an hour with traffic on one day out of seven averages
    /// to count/7, matching how the paper's per-hour means are read
    /// off a fixed 4-week window. (The previous behaviour divided by
    /// occupied-bucket count, which inflated sparse hours.)
    pub fn hour_of_day_profile(&self, hours: u64) -> [f64; 24] {
        let mut sums = [0u64; 24];
        let mut occurrences = [0u64; 24];
        for slot in 0..24u64 {
            if hours > slot {
                // Slot `slot` occurs at absolute hours slot, slot+24, …
                // strictly below `hours`.
                occurrences[slot as usize] = (hours - slot).div_ceil(24);
            }
        }
        for (&hour, &count) in &self.counts {
            if hour < hours {
                sums[(hour % 24) as usize] += count;
            }
        }
        let mut profile = [0.0; 24];
        for i in 0..24 {
            if occurrences[i] > 0 {
                profile[i] = sums[i] as f64 / occurrences[i] as f64;
            }
        }
        profile
    }

    /// Coefficient of variation of the hourly counts over `hours` —
    /// the paper's "requests are stable, responses are erratic"
    /// contrast is a variability statement.
    pub fn coefficient_of_variation(&self, hours: u64) -> f64 {
        if hours == 0 {
            return 0.0;
        }
        let values: Vec<f64> = (0..hours).map(|h| self.get(h) as f64).collect();
        let mean = values.iter().sum::<f64>() / hours as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / hours as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut s = HourlySeries::new();
        s.add(Timestamp::from_secs(10));
        s.add(Timestamp::from_secs(3_599));
        s.add(Timestamp::from_secs(3_600));
        s.add_n(Timestamp::from_secs(7_200), 5);
        assert_eq!(s.get(0), 2);
        assert_eq!(s.get(1), 1);
        assert_eq!(s.get(2), 5);
        assert_eq!(s.get(3), 0);
        assert_eq!(s.total(), 8);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = HourlySeries::new();
        a.add_n(Timestamp::from_secs(0), 3);
        a.add_n(Timestamp::from_secs(3_600), 1);
        let mut b = HourlySeries::new();
        b.add_n(Timestamp::from_secs(0), 2);
        b.add_n(Timestamp::from_secs(7_200), 4);
        a.merge(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 4);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn dense_includes_zeros() {
        let mut s = HourlySeries::new();
        s.add(Timestamp::from_secs(3_600));
        let rows = s.dense(3);
        assert_eq!(rows, vec![(0, 0), (1, 1), (2, 0)]);
    }

    #[test]
    fn hour_of_day_profile_averages_days() {
        let mut s = HourlySeries::new();
        // Hour 6 on two different days: 10 and 20 events.
        s.add_n(Timestamp::from_secs(6 * 3_600), 10);
        s.add_n(Timestamp::from_secs(86_400 + 6 * 3_600), 20);
        let profile = s.hour_of_day_profile(48);
        assert_eq!(profile[6], 15.0);
        assert_eq!(profile[7], 0.0);
    }

    #[test]
    fn hour_of_day_profile_divides_by_days_in_period_not_active_days() {
        let mut s = HourlySeries::new();
        // Hour 6 active only on day 0 of a 4-day period.
        s.add_n(Timestamp::from_secs(6 * 3_600), 12);
        let profile = s.hour_of_day_profile(4 * 24);
        // 12 events over 4 occurrences of 06:00 → mean 3, not 12.
        assert_eq!(profile[6], 3.0);
    }

    #[test]
    fn hour_of_day_profile_partial_last_day() {
        let mut s = HourlySeries::new();
        // Hour-of-day 1 on day 0. 30-hour period: hour-of-day 1 occurs
        // twice (h1, h25); slot 12 occurs once (h12).
        s.add_n(Timestamp::from_secs(3_600), 10);
        s.add_n(Timestamp::from_secs(12 * 3_600), 7);
        let profile = s.hour_of_day_profile(30);
        assert_eq!(profile[1], 5.0);
        assert_eq!(profile[12], 7.0);
    }

    #[test]
    fn hour_of_day_profile_ignores_counts_outside_period() {
        let mut s = HourlySeries::new();
        s.add_n(Timestamp::from_secs(6 * 3_600), 10);
        s.add_n(Timestamp::from_secs(86_400 + 6 * 3_600), 99); // beyond 24h period
        let profile = s.hour_of_day_profile(24);
        assert_eq!(profile[6], 10.0);
    }

    #[test]
    fn cv_distinguishes_stable_from_erratic() {
        let mut stable = HourlySeries::new();
        let mut erratic = HourlySeries::new();
        for h in 0..48u64 {
            stable.add_n(Timestamp::from_secs(h * 3_600), 100);
            // One huge burst, silence otherwise.
            if h == 20 {
                erratic.add_n(Timestamp::from_secs(h * 3_600), 4_800);
            }
        }
        assert!(stable.coefficient_of_variation(48) < 0.01);
        assert!(erratic.coefficient_of_variation(48) > 3.0);
    }

    #[test]
    fn cv_edge_cases() {
        let s = HourlySeries::new();
        assert_eq!(s.coefficient_of_variation(0), 0.0);
        assert_eq!(s.coefficient_of_variation(10), 0.0);
    }
}
