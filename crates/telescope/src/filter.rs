//! Research-scanner identification and removal (Fig. 2 sanitization).
//!
//! The paper attributes 98.5 % of QUIC IBR to two university projects
//! and removes them before all further analyses. Identification works
//! two ways, both provided here:
//!
//! * **by origin** — the scanners' source networks are known
//!   (PeeringDB: education ASes that publish scanning projects);
//! * **by behaviour** — any source delivering on the order of one
//!   packet per telescope address within the period is sweeping the
//!   whole space; normal traffic never reaches that coverage.

use crate::pipeline::QuicObservation;
use quicsand_intel::{AsDatabase, NetworkType};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// A predicate over sources marking research scanners.
#[derive(Debug, Clone, Default)]
pub struct ResearchFilter {
    sources: HashSet<Ipv4Addr>,
}

impl ResearchFilter {
    /// Builds a filter from explicitly known scanner addresses.
    pub fn by_sources<I: IntoIterator<Item = Ipv4Addr>>(sources: I) -> Self {
        ResearchFilter {
            sources: sources.into_iter().collect(),
        }
    }

    /// Behavioural detection: sources whose request packet count over
    /// the period exceeds `min_packets` *and* that touched more than
    /// `min_unique_dsts` distinct telescope addresses. Both conditions
    /// are orders of magnitude above any non-sweep source.
    pub fn detect(
        observations: &[QuicObservation],
        min_packets: u64,
        min_unique_dsts: u64,
    ) -> Self {
        let mut packet_counts: HashMap<Ipv4Addr, u64> = HashMap::new();
        let mut dst_counts: HashMap<Ipv4Addr, HashSet<Ipv4Addr>> = HashMap::new();
        for obs in observations {
            *packet_counts.entry(obs.src).or_default() += 1;
            dst_counts.entry(obs.src).or_default().insert(obs.dst);
        }
        let sources = packet_counts
            .into_iter()
            .filter(|(src, count)| {
                *count > min_packets && dst_counts[src].len() as u64 > min_unique_dsts
            })
            .map(|(src, _)| src)
            .collect();
        ResearchFilter { sources }
    }

    /// Detection with education-network corroboration: behavioural
    /// candidates are kept only if their origin AS is an education
    /// network — the cross-check the paper performs against PeeringDB.
    pub fn detect_with_asdb(
        observations: &[QuicObservation],
        asdb: &AsDatabase,
        min_packets: u64,
        min_unique_dsts: u64,
    ) -> Self {
        let behavioural = Self::detect(observations, min_packets, min_unique_dsts);
        ResearchFilter {
            sources: behavioural
                .sources
                .into_iter()
                .filter(|src| asdb.network_type(*src) == NetworkType::Education)
                .collect(),
        }
    }

    /// The identified scanner sources.
    pub fn sources(&self) -> &HashSet<Ipv4Addr> {
        &self.sources
    }

    /// Whether `src` is a research scanner.
    pub fn is_research(&self, src: Ipv4Addr) -> bool {
        self.sources.contains(&src)
    }

    /// Splits observations into (research, sanitized).
    pub fn partition<'a>(
        &self,
        observations: &'a [QuicObservation],
    ) -> (Vec<&'a QuicObservation>, Vec<&'a QuicObservation>) {
        observations
            .iter()
            .partition(|obs| self.is_research(obs.src))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_dissect::Direction;
    use quicsand_net::Timestamp;
    use quicsand_traffic::research::research_probe_payload;

    fn obs(src: Ipv4Addr, dst_last: u8, ts: u64) -> QuicObservation {
        QuicObservation {
            ts: Timestamp::from_secs(ts),
            src,
            dst: Ipv4Addr::new(128, 0, 0, dst_last),
            src_port: 40_000,
            dst_port: 443,
            direction: Direction::Request,
            dissected: quicsand_dissect::dissect_udp_payload(&research_probe_payload(1)).unwrap(),
        }
    }

    fn scanner() -> Ipv4Addr {
        Ipv4Addr::new(138, 246, 253, 13)
    }

    fn bot() -> Ipv4Addr {
        Ipv4Addr::new(60, 1, 2, 3)
    }

    fn observations() -> Vec<QuicObservation> {
        let mut v = Vec::new();
        // Scanner: 200 packets to 200 distinct addresses.
        for i in 0..200u64 {
            v.push(obs(scanner(), (i % 250) as u8, i));
        }
        // Bot: 10 packets to 3 addresses.
        for i in 0..10u64 {
            v.push(obs(bot(), (i % 3) as u8, 1_000 + i));
        }
        v
    }

    #[test]
    fn by_sources_filter() {
        let f = ResearchFilter::by_sources([scanner()]);
        assert!(f.is_research(scanner()));
        assert!(!f.is_research(bot()));
    }

    #[test]
    fn behavioural_detection_finds_sweepers_only() {
        let v = observations();
        let f = ResearchFilter::detect(&v, 100, 100);
        assert!(f.is_research(scanner()));
        assert!(!f.is_research(bot()));
        assert_eq!(f.sources().len(), 1);
    }

    #[test]
    fn high_volume_low_coverage_not_flagged() {
        // A flood victim sends many packets to FEW addresses — must not
        // be classified as a research scanner.
        let mut v = Vec::new();
        for i in 0..500u64 {
            v.push(obs(bot(), (i % 4) as u8, i));
        }
        let f = ResearchFilter::detect(&v, 100, 100);
        assert!(!f.is_research(bot()));
    }

    #[test]
    fn asdb_corroboration() {
        let v = observations();
        let mut asdb = AsDatabase::new();
        asdb.register_as(quicsand_intel::AsInfo {
            asn: 56357,
            name: "TUM".into(),
            network_type: NetworkType::Education,
            country: "DE",
        });
        asdb.announce("138.246.253.0/24".parse().unwrap(), 56357);
        let f = ResearchFilter::detect_with_asdb(&v, &asdb, 100, 100);
        assert!(f.is_research(scanner()));

        // Same behaviour from a non-education AS is rejected.
        let mut v2 = Vec::new();
        for i in 0..200u64 {
            v2.push(obs(bot(), (i % 250) as u8, i));
        }
        let f2 = ResearchFilter::detect_with_asdb(&v2, &asdb, 100, 100);
        assert!(!f2.is_research(bot()));
    }

    #[test]
    fn partition_splits_correctly() {
        let v = observations();
        let f = ResearchFilter::by_sources([scanner()]);
        let (research, sanitized) = f.partition(&v);
        assert_eq!(research.len(), 200);
        assert_eq!(sanitized.len(), 10);
        assert!(sanitized.iter().all(|o| o.src == bot()));
    }
}
