//! Scenario configuration and presets.
//!
//! All counts are *generated* counts; where the paper's absolute volume
//! is impractical to materialize (92 M research packets, 282 k common
//! floods), a preset generates a documented sub-sample and records the
//! factor so analyses can rescale shares (see `research_subsample_factor`
//! and `common_attack_subsample_factor`). Distribution *shapes* are never
//! sub-sampled.

use serde::{Deserialize, Serialize};

/// Complete scenario configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Measurement duration in days (paper: 30).
    pub days: u32,

    // --- Research scanners (Fig. 2) ---
    /// Full-IPv4 scans per research project over the period. The paper's
    /// 92 M research packets over two projects correspond to ~11 full
    /// sweeps of the telescope's 2^23 addresses.
    pub research_scans_per_project: u32,
    /// Telescope packets generated per scan. Full fidelity is 2^23; the
    /// paper preset sub-samples and records the factor.
    pub research_packets_per_scan: u64,
    /// Duration of one full sweep, in hours (zmap-style scans take
    /// hours).
    pub research_scan_duration_hours: u64,

    // --- Malicious request scans (Fig. 3, Fig. 5, GreyNoise) ---
    /// Request sessions over the period (paper: 18 k).
    pub request_sessions: u64,
    /// Mean packets per request session (paper: 11).
    pub request_session_mean_packets: f64,
    /// Share of request sources carrying GreyNoise tags (paper: 2.3 %).
    pub tagged_source_share: f64,

    // --- QUIC floods (Figs. 6–9) ---
    /// QUIC flood attacks over the period (paper: 2 905 ⇒ ~4/hour).
    pub quic_attacks: u64,
    /// Unique victims (paper: 394).
    pub victim_pool: usize,
    /// Median flood duration in seconds (paper: 255).
    pub quic_duration_median_secs: f64,
    /// Log-normal shape of flood durations.
    pub quic_duration_sigma: f64,
    /// Median Internet-wide probe rate of a flood, in probes/s. Each
    /// probe elicits ~2.4 backscatter datagrams, and 1/512 of probes use
    /// spoofed addresses inside the telescope, so 210 probes/s yields
    /// the paper's ~1 max pps at the telescope.
    pub quic_global_pps_median: f64,
    /// Log-normal shape of probe rates.
    pub quic_global_pps_sigma: f64,
    /// Share of victims attacked exactly once (paper Fig. 6: >50 %).
    pub single_attack_victim_share: f64,

    // --- Common (TCP/ICMP) floods (Fig. 7 baseline) ---
    /// Background common-protocol attacks to generate. The paper finds
    /// 282 k; the preset generates a statistically representative
    /// sample and records the factor.
    pub common_attacks: u64,
    /// Median common flood duration in seconds (paper: 1 499).
    pub common_duration_median_secs: f64,
    /// Log-normal shape of common flood durations.
    pub common_duration_sigma: f64,
    /// Median Internet-wide packet rate of common floods (packets/s).
    pub common_global_pps_median: f64,
    /// Log-normal shape.
    pub common_global_pps_sigma: f64,

    // --- Multi-vector structure (Fig. 8, 11–13) ---
    /// Share of QUIC attacks concurrent with a common flood (paper:
    /// 0.51).
    pub concurrent_share: f64,
    /// Share of QUIC attacks sequential to a common flood (paper:
    /// 0.40). The rest is isolated (0.09).
    pub sequential_share: f64,
    /// Probability that a concurrent common flood fully covers the QUIC
    /// flood (Fig. 12: three quarters overlap 100 %).
    pub full_overlap_share: f64,
    /// Median gap of sequential attacks, in hours (Fig. 13: 82 % > 1 h,
    /// mean 36 h).
    pub sequential_gap_median_hours: f64,
    /// Log-normal shape of sequential gaps.
    pub sequential_gap_sigma: f64,

    // --- Misconfiguration noise (Appendix B) ---
    /// Low-volume response sessions (paper: ~23 k — the 89 % of
    /// response sessions the thresholds exclude).
    pub misconfig_sessions: u64,
    /// Mean packets per misconfig session (paper median: 11).
    pub misconfig_mean_packets: f64,

    // --- Pre-filter false positives ---
    /// Non-QUIC UDP/443 packets (malformed payloads) to sprinkle in,
    /// exercising the dissector's false-positive rejection.
    pub garbage_udp443_packets: u64,
}

impl ScenarioConfig {
    /// Tiny scenario for unit/integration tests: seconds to generate,
    /// still exercising every component.
    pub fn test() -> Self {
        ScenarioConfig {
            seed: 0xBADC_0FFE,
            days: 2,
            research_scans_per_project: 2,
            research_packets_per_scan: 2_000,
            research_scan_duration_hours: 5,
            request_sessions: 150,
            request_session_mean_packets: 11.0,
            tagged_source_share: 0.023,
            quic_attacks: 60,
            victim_pool: 24,
            quic_duration_median_secs: 255.0,
            quic_duration_sigma: 1.0,
            quic_global_pps_median: 210.0,
            quic_global_pps_sigma: 0.7,
            single_attack_victim_share: 0.55,
            common_attacks: 80,
            common_duration_median_secs: 1_499.0,
            common_duration_sigma: 1.0,
            common_global_pps_median: 460.0,
            common_global_pps_sigma: 0.7,
            concurrent_share: 0.51,
            sequential_share: 0.40,
            full_overlap_share: 0.75,
            sequential_gap_median_hours: 8.0,
            sequential_gap_sigma: 1.4,
            misconfig_sessions: 200,
            misconfig_mean_packets: 11.0,
            garbage_udp443_packets: 50,
        }
    }

    /// The April-2021 reproduction preset: 30 days, the paper's event
    /// counts for everything attack-related, documented sub-samples for
    /// the two bulk components.
    pub fn paper_month() -> Self {
        ScenarioConfig {
            seed: 0x2021_0401,
            days: 30,
            research_scans_per_project: 6,      // ~11 sweeps combined
            research_packets_per_scan: 100_000, // 2^23 full fidelity, factor ~84
            research_scan_duration_hours: 10,
            request_sessions: 18_000, // full paper fidelity
            request_session_mean_packets: 11.0,
            tagged_source_share: 0.023,
            quic_attacks: 2_905, // exact paper count
            victim_pool: 394,    // exact paper count
            quic_duration_median_secs: 255.0,
            quic_duration_sigma: 1.0,
            quic_global_pps_median: 210.0,
            quic_global_pps_sigma: 0.8,
            single_attack_victim_share: 0.55,
            common_attacks: 6_000, // 282 k in the paper, factor 47
            common_duration_median_secs: 1_499.0,
            common_duration_sigma: 1.2,
            common_global_pps_median: 460.0,
            common_global_pps_sigma: 0.8,
            concurrent_share: 0.51,
            sequential_share: 0.40,
            full_overlap_share: 0.75,
            sequential_gap_median_hours: 20.0,
            sequential_gap_sigma: 1.7,
            misconfig_sessions: 23_000, // full paper fidelity
            misconfig_mean_packets: 11.0,
            garbage_udp443_packets: 2_000,
        }
    }

    /// The sub-sampling factor of the research component relative to
    /// full fidelity (2^23 packets per sweep). Fig. 2 rescales research
    /// counts by this factor when reporting shares.
    pub fn research_subsample_factor(&self) -> f64 {
        (1u64 << 23) as f64 / self.research_packets_per_scan as f64
    }

    /// The sub-sampling factor of common attacks relative to the
    /// paper's 282 k.
    pub fn common_attack_subsample_factor(&self) -> f64 {
        282_000.0 / self.common_attacks as f64
    }

    /// Total measurement duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        u64::from(self.days) * 86_400
    }

    /// Validates internal consistency; panics on nonsensical configs
    /// (these are programming errors in experiment setups).
    pub fn validate(&self) {
        assert!(self.days > 0, "scenario needs at least one day");
        assert!(
            self.concurrent_share + self.sequential_share <= 1.0,
            "multi-vector shares exceed 1"
        );
        assert!(self.victim_pool > 0, "need at least one victim");
        assert!(
            (0.0..=1.0).contains(&self.tagged_source_share),
            "tagged share must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.full_overlap_share),
            "full-overlap share must be a probability"
        );
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ScenarioConfig::test().validate();
        ScenarioConfig::paper_month().validate();
    }

    #[test]
    fn paper_month_matches_paper_counts() {
        let c = ScenarioConfig::paper_month();
        assert_eq!(c.days, 30);
        assert_eq!(c.quic_attacks, 2_905);
        assert_eq!(c.victim_pool, 394);
        assert_eq!(c.quic_duration_median_secs, 255.0);
        assert_eq!(c.common_duration_median_secs, 1_499.0);
        assert!((c.concurrent_share - 0.51).abs() < 1e-12);
        assert!((c.sequential_share - 0.40).abs() < 1e-12);
        assert_eq!(c.duration_secs(), 30 * 86_400);
    }

    #[test]
    fn subsample_factors() {
        let c = ScenarioConfig::paper_month();
        assert!((c.research_subsample_factor() - 83.886_08).abs() < 0.001);
        assert!((c.common_attack_subsample_factor() - 47.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "multi-vector shares")]
    fn invalid_shares_rejected() {
        let mut c = ScenarioConfig::test();
        c.concurrent_share = 0.7;
        c.sequential_share = 0.5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_rejected() {
        let mut c = ScenarioConfig::test();
        c.days = 0;
        c.validate();
    }

    #[test]
    fn default_is_test_preset() {
        assert_eq!(ScenarioConfig::default(), ScenarioConfig::test());
    }
}
