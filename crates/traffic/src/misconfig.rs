//! Low-volume response noise (Appendix B).
//!
//! 89 % of response sessions fall below the Moore et al. thresholds:
//! median 11 packets, 7 seconds, 0.18 max pps — "such low-volume events
//! point to misconfigurations". We model them as servers replying to a
//! stray client (a briefly misrouted or misconfigured host) whose
//! address happens to sit in the darknet: a short burst of ordinary
//! handshake backscatter from a content server.

use crate::backscatter::BackscatterBuilder;
use crate::config::ScenarioConfig;
use quicsand_intel::SyntheticInternet;
use quicsand_net::rng::{exponential, poisson, substream};
use quicsand_net::{Duration, PacketRecord, Timestamp};
use quicsand_wire::QUIC_PORT;
use rand::Rng;

/// Generates all misconfiguration response sessions.
pub fn generate(world: &SyntheticInternet, config: &ScenarioConfig, out: &mut Vec<PacketRecord>) {
    let mut rng = substream(config.seed, "misconfig");
    for session_index in 0..config.misconfig_sessions {
        // Source: a content server (responses come almost exclusively
        // from content networks, Fig. 5). Use the provider pools.
        let (server, provider) = world.sample_victim(&mut rng);
        let version_wire = world
            .servers
            .lookup(server)
            .map_or(quicsand_wire::Version::V1.to_wire(), |s| s.version_wire);
        let mut builder = BackscatterBuilder::new(
            provider,
            version_wire,
            config.seed ^ (0x6d69_7363 + session_index),
        );

        // One stray client identity in the darknet.
        let client = world.telescope.sample(&mut rng);
        let client_port = rng.gen_range(1_024..65_000);

        // ~11 packets over ~7 seconds.
        let datagram_target = 1 + poisson(&mut rng, config.misconfig_mean_packets - 1.0);
        let start = Timestamp::from_secs(rng.gen_range(0..config.duration_secs()));
        let mut ts = start;
        let mut emitted = 0u64;
        'outer: while emitted < datagram_target {
            let response = builder.respond();
            for datagram in response.datagrams {
                if emitted >= datagram_target || ts.as_secs() >= config.duration_secs() {
                    break 'outer;
                }
                out.push(PacketRecord::udp(
                    ts,
                    server,
                    client,
                    QUIC_PORT,
                    client_port,
                    datagram,
                ));
                emitted += 1;
                ts += Duration::from_millis(rng.gen_range(100..600));
            }
            ts += Duration::from_secs_f64(exponential(&mut rng, 0.8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_intel::TopologyConfig;
    use quicsand_net::Ipv4Prefix;
    use quicsand_sessions::dos::DosThresholds;
    use quicsand_sessions::session::{sessionize, SessionConfig};

    fn generated() -> (SyntheticInternet, Vec<PacketRecord>, ScenarioConfig) {
        let world = SyntheticInternet::build(&TopologyConfig {
            servers_per_provider: 4,
            ..TopologyConfig::default()
        });
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&world, &config, &mut out);
        (world, out, config)
    }

    #[test]
    fn all_packets_are_responses_into_telescope() {
        let (world, out, _) = generated();
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.transport.src_port(), Some(QUIC_PORT));
            assert!(world.telescope.contains(r.dst));
            assert!(!world.telescope.contains(r.src));
        }
    }

    #[test]
    fn sources_are_content_servers() {
        let (world, out, _) = generated();
        for r in out.iter().take(200) {
            assert!(world.servers.is_known_server(r.src));
        }
    }

    #[test]
    fn sessions_fall_below_dos_thresholds() {
        let (_, mut out, _) = generated();
        out.sort_by_key(|r| r.ts);
        let sessions = sessionize(out.iter().map(|r| (r.ts, r.src)), SessionConfig::default());
        let thresholds = DosThresholds::moore();
        let attacks = sessions.iter().filter(|s| thresholds.matches(s)).count();
        // Essentially all misconfig sessions must be excluded. Distinct
        // misconfig sessions from one server can merge and cross the
        // packet threshold occasionally; tolerate a sliver.
        assert!(
            (attacks as f64) < sessions.len() as f64 * 0.05,
            "{attacks} of {} misconfig sessions detected as attacks",
            sessions.len()
        );
    }

    #[test]
    fn median_shape_matches_appendix_b() {
        let (_, mut out, config) = generated();
        out.sort_by_key(|r| r.ts);
        let sessions = sessionize(out.iter().map(|r| (r.ts, r.src)), SessionConfig::default());
        let mut packet_counts: Vec<u64> = sessions.iter().map(|s| s.packet_count).collect();
        packet_counts.sort_unstable();
        let median = packet_counts[packet_counts.len() / 2] as f64;
        // Sessions may merge (same server hit twice), so the median can
        // sit above the per-event mean, but must stay low-volume.
        assert!(
            median >= 3.0 && median <= config.misconfig_mean_packets * 3.0,
            "median packets {median}"
        );
    }

    #[test]
    fn deterministic() {
        let world = SyntheticInternet::build(&TopologyConfig {
            servers_per_provider: 4,
            ..TopologyConfig::default()
        });
        let config = ScenarioConfig::test();
        let mut a = Vec::new();
        let mut b = Vec::new();
        generate(&world, &config, &mut a);
        generate(&world, &config, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn telescope_is_a_slash_nine() {
        // Guard against the telescope config drifting: the share math
        // in floods.rs depends on it.
        let t: Ipv4Prefix = quicsand_net::ip::telescope_prefix();
        assert_eq!(t.len(), 9);
    }
}
