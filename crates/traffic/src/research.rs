//! Research scanner traffic (Fig. 2).
//!
//! TUM and RWTH run periodic full-IPv4 QUIC scans; each sweep delivers
//! one Initial probe to every one of the telescope's 2^23 addresses
//! ("Each Internet-wide, single-packet scan sends 2^23 ≈ 8×10^6 packets
//! to the telescope", §5.1). Probes are legitimate QUIC Initials with a
//! visible Client Hello — which is also how the pipeline (and GreyNoise)
//! can tell research probes from the opaque flood backscatter.
//!
//! The probe payload is built once per sweep and shared across records
//! (`Bytes` is reference-counted), so even a million-packet sweep is
//! cheap to materialize.

use crate::config::ScenarioConfig;
use bytes::Bytes;
use quicsand_intel::{ActorClass, ActorTag, SyntheticInternet};
use quicsand_net::rng::substream;
use quicsand_net::{Duration, PacketRecord, Timestamp};
use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{Packet, PacketPayload};
use quicsand_wire::tls::{cipher_suite, ClientHello};
use quicsand_wire::{ConnectionId, Frame, Version, MIN_INITIAL_SIZE, QUIC_PORT};
use rand::Rng;

/// Builds the single-probe payload a research scanner reuses for a
/// sweep.
pub fn research_probe_payload(sweep_seed: u64) -> Bytes {
    let mut rng = substream(sweep_seed, "research-probe");
    let dcid = ConnectionId::from_u64(rng.gen());
    let scid = ConnectionId::from_u64(rng.gen());
    let keys = InitialSecrets::derive(Version::V1, &dcid);
    let hello = ClientHello {
        random: rng.gen(),
        cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
        server_name: None, // zmap-style scans offer no SNI
        alpn: vec!["h3".to_string()],
        key_share: Bytes::from(rng.gen::<[u8; 32]>().to_vec()),
    };
    let wire = Packet::Initial {
        version: Version::V1,
        dcid,
        scid,
        token: Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Crypto {
            offset: 0,
            data: Bytes::from(hello.encode()),
        }]),
    }
    .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
    .expect("static initial encodes");
    Bytes::from(wire)
}

/// Generates all research-scan records into `out` and registers the
/// scanners with GreyNoise (research scanners self-identify: they are
/// the only *benign*-classified actors, which is why the sanitized
/// traffic contains "no signs of benign scanners", §5.2).
pub fn generate(
    world: &mut SyntheticInternet,
    config: &ScenarioConfig,
    out: &mut Vec<PacketRecord>,
) {
    let mut rng = substream(config.seed, "research");
    let period = Duration::from_secs(
        config.duration_secs() / u64::from(config.research_scans_per_project).max(1),
    );
    for scanner in world.research_scanners().to_vec() {
        world.greynoise.observe(
            scanner.addr,
            ActorClass::Benign,
            vec![ActorTag::ResearchScanner],
        );
        for scan_index in 0..config.research_scans_per_project {
            // Projects interleave: offset each project by half a period.
            let project_offset = if scanner.org == "TUM" {
                Duration::ZERO
            } else {
                Duration::from_secs(period.as_secs() / 2)
            };
            let sweep_seed = config
                .seed
                .wrapping_add(u64::from(scan_index))
                .wrapping_mul(31)
                .wrapping_add(scanner.asn as u64);
            let payload = research_probe_payload(sweep_seed);
            let start =
                Timestamp::EPOCH + period.saturating_mul(u64::from(scan_index)) + project_offset;
            let sweep_span = Duration::from_secs(config.research_scan_duration_hours * 3_600);
            for _ in 0..config.research_packets_per_scan {
                let offset = Duration::from_micros(rng.gen_range(0..sweep_span.as_micros().max(1)));
                let ts = start + offset;
                if ts.as_secs() >= config.duration_secs() {
                    continue;
                }
                let dst = world.telescope.sample(&mut rng);
                out.push(PacketRecord::udp(
                    ts,
                    scanner.addr,
                    dst,
                    rng.gen_range(32_768..61_000),
                    QUIC_PORT,
                    payload.clone(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_dissect::{dissect_udp_payload, MessageKind};
    use quicsand_intel::TopologyConfig;

    fn small_world() -> SyntheticInternet {
        SyntheticInternet::build(&TopologyConfig {
            servers_per_provider: 4,
            ..TopologyConfig::default()
        })
    }

    #[test]
    fn probe_payload_is_valid_client_initial() {
        let payload = research_probe_payload(1);
        assert!(payload.len() >= MIN_INITIAL_SIZE);
        let d = dissect_udp_payload(&payload).unwrap();
        assert_eq!(d.messages[0].kind, MessageKind::Initial);
        assert!(d.messages[0].has_client_hello);
    }

    #[test]
    fn generates_expected_volume() {
        let mut world = small_world();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        let expected =
            2 * u64::from(config.research_scans_per_project) * config.research_packets_per_scan;
        // A few probes may fall past the period end and be skipped.
        assert!(out.len() as u64 <= expected);
        assert!(out.len() as u64 > expected * 9 / 10, "len={}", out.len());
    }

    #[test]
    fn probes_target_telescope_on_port_443() {
        let mut world = small_world();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        for record in out.iter().take(500) {
            assert!(world.telescope.contains(record.dst));
            assert_eq!(record.transport.dst_port(), Some(QUIC_PORT));
            assert_ne!(record.transport.src_port(), Some(QUIC_PORT));
        }
    }

    #[test]
    fn sources_are_the_research_scanners() {
        let mut world = small_world();
        let scanners: Vec<_> = world.research_scanners().iter().map(|s| s.addr).collect();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        assert!(out.iter().all(|r| scanners.contains(&r.src)));
        // Both projects contribute.
        assert!(scanners.iter().all(|s| out.iter().any(|r| r.src == *s)));
    }

    #[test]
    fn scanners_registered_as_benign() {
        let mut world = small_world();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        for scanner in world.research_scanners().to_vec() {
            assert!(world.greynoise.is_benign(scanner.addr));
        }
    }

    #[test]
    fn timestamps_within_period() {
        let mut world = small_world();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        assert!(out.iter().all(|r| r.ts.as_secs() < config.duration_secs()));
    }

    #[test]
    fn payload_sharing_keeps_memory_flat() {
        // All probes of one sweep share one payload allocation.
        let payload = research_probe_payload(9);
        let clone = payload.clone();
        assert_eq!(payload.as_ptr(), clone.as_ptr());
    }
}
