//! Malicious request scanning (Fig. 3 diurnal pattern, Fig. 5 eyeball
//! origins, §5.2 GreyNoise correlation).
//!
//! Request sessions originate from eyeball networks — bots probing for
//! QUIC servers. Activity follows a diurnal curve with peaks at 6:00 and
//! 18:00 UTC; sessions average 11 packets; 2.3 % of sources carry
//! known-actor tags (Mirai, Eternalblue, bruteforcers); none are benign.

use crate::config::ScenarioConfig;
use bytes::Bytes;
use quicsand_intel::{ActorClass, ActorTag, SyntheticInternet};
use quicsand_net::rng::{exponential, substream, weighted_index};
use quicsand_net::{Duration, PacketRecord, Timestamp};
use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{Packet, PacketPayload};
use quicsand_wire::tls::{cipher_suite, ClientHello};
use quicsand_wire::{ConnectionId, Frame, Version, QUIC_PORT};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Relative request activity per hour of day: peaks at 6:00 and 18:00
/// UTC (Fig. 3 insert), implemented as a 12-hour cosine.
pub fn diurnal_weight(hour_of_day: u64) -> f64 {
    let phase = (hour_of_day as f64 - 6.0) * std::f64::consts::TAU / 12.0;
    1.0 + 0.6 * phase.cos()
}

/// Samples a session start time with the diurnal profile.
fn sample_start(rng: &mut ChaCha12Rng, days: u32) -> Timestamp {
    let weights: Vec<f64> = (0..24).map(diurnal_weight).collect();
    let day = rng.gen_range(0..u64::from(days));
    let hour = weighted_index(rng, &weights) as u64;
    let second = rng.gen_range(0..3_600u64);
    Timestamp::from_secs(day * 86_400 + hour * 3_600 + second)
}

/// A scan probe: a minimal client Initial (bots are sloppier than
/// browsers — no SNI, single suite), freshly keyed per source.
fn scan_probe(rng: &mut ChaCha12Rng) -> Bytes {
    let dcid = ConnectionId::from_u64(rng.gen());
    let keys = InitialSecrets::derive(Version::V1, &dcid);
    let hello = ClientHello {
        random: rng.gen(),
        cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
        server_name: None,
        alpn: vec!["h3".to_string()],
        key_share: Bytes::from(rng.gen::<[u8; 32]>().to_vec()),
    };
    let wire = Packet::Initial {
        version: Version::V1,
        dcid,
        scid: ConnectionId::from_u64(rng.gen::<u32>() as u64),
        token: Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Crypto {
            offset: 0,
            data: Bytes::from(hello.encode()),
        }]),
    }
    .encode_padded(Some(keys.client), quicsand_wire::MIN_INITIAL_SIZE)
    .expect("initial encodes");
    Bytes::from(wire)
}

/// Mean scan bursts (≈ sessions) per source; bots rescan, which is
/// what populates the minutes-scale inter-arrival gaps behind the
/// Fig. 4 timeout knee.
const MEAN_BURSTS_PER_SOURCE: f64 = 2.2;

/// Generates all malicious request sessions and registers the sources
/// with GreyNoise. `config.request_sessions` is the *total* expected
/// session count; sources host ~2 bursts each on average.
pub fn generate(
    world: &mut SyntheticInternet,
    config: &ScenarioConfig,
    out: &mut Vec<PacketRecord>,
) {
    let mut rng = substream(config.seed, "scanners");
    let sources = ((config.request_sessions as f64) / MEAN_BURSTS_PER_SOURCE).ceil() as u64;
    for _ in 0..sources {
        let (src, _country) = world.sample_eyeball_source(&mut rng);

        // GreyNoise view of this source: never benign; a small share
        // carries known-actor tags.
        if rng.gen_bool(config.tagged_source_share) {
            let tag = match rng.gen_range(0..3) {
                0 => ActorTag::Mirai,
                1 => ActorTag::Eternalblue,
                _ => ActorTag::Bruteforcer,
            };
            world
                .greynoise
                .observe(src, ActorClass::Malicious, vec![tag]);
        } else {
            world.greynoise.observe(src, ActorClass::Unknown, vec![]);
        }

        let bursts = 1 + quicsand_net::rng::poisson(&mut rng, MEAN_BURSTS_PER_SOURCE - 1.0);
        let payload = scan_probe(&mut rng);
        let src_port = rng.gen_range(1_024..65_000);
        let mut ts = sample_start(&mut rng, config.days);
        for _ in 0..bursts {
            // Burst shape: ~11 packets, inter-arrival well under the
            // 5-minute session timeout.
            let packets =
                1 + quicsand_net::rng::poisson(&mut rng, config.request_session_mean_packets - 1.0);
            for _ in 0..packets {
                if ts.as_secs() >= config.duration_secs() {
                    break;
                }
                let dst = world.telescope.sample(&mut rng);
                out.push(PacketRecord::udp(
                    ts,
                    src,
                    dst,
                    src_port,
                    QUIC_PORT,
                    payload.clone(),
                ));
                ts += Duration::from_secs_f64(exponential(&mut rng, 15.0));
            }
            // Re-scan gap: concentrated around ~3 minutes with a
            // modest tail — the gap population whose exhaustion puts
            // the Fig. 4 knee at ~5 minutes.
            ts += Duration::from_secs_f64(quicsand_net::rng::lognormal_by_median(
                &mut rng, 150.0, 0.7,
            ));
            if ts.as_secs() >= config.duration_secs() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_dissect::{dissect_udp_payload, MessageKind};
    use quicsand_intel::{NetworkType, TopologyConfig};

    fn small_world() -> SyntheticInternet {
        SyntheticInternet::build(&TopologyConfig {
            servers_per_provider: 4,
            ..TopologyConfig::default()
        })
    }

    fn generated() -> (SyntheticInternet, Vec<PacketRecord>, ScenarioConfig) {
        let mut world = small_world();
        let config = ScenarioConfig::test();
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        (world, out, config)
    }

    #[test]
    fn diurnal_peaks_at_6_and_18() {
        assert!(diurnal_weight(6) > diurnal_weight(0));
        assert!(diurnal_weight(18) > diurnal_weight(12));
        assert!((diurnal_weight(6) - diurnal_weight(18)).abs() < 1e-9);
        let trough = diurnal_weight(0).min(diurnal_weight(12));
        assert!(diurnal_weight(6) / trough > 2.0);
    }

    #[test]
    fn sources_are_eyeballs() {
        let (world, out, _) = generated();
        for record in out.iter().take(300) {
            assert_eq!(world.asdb.network_type(record.src), NetworkType::Eyeball);
        }
    }

    #[test]
    fn probes_are_valid_initials_with_client_hello() {
        let (_, out, _) = generated();
        let d = dissect_udp_payload(out[0].udp_payload().unwrap()).unwrap();
        assert_eq!(d.messages[0].kind, MessageKind::Initial);
        assert!(d.messages[0].has_client_hello);
    }

    #[test]
    fn mean_session_size_near_config() {
        let (_, out, config) = generated();
        let mean = out.len() as f64 / config.request_sessions as f64;
        assert!(
            (mean - config.request_session_mean_packets).abs() < 2.5,
            "mean packets per session {mean}"
        );
    }

    #[test]
    fn greynoise_sees_no_benign_and_some_tagged() {
        let (world, out, _) = generated();
        let sources: std::collections::HashSet<_> = out.iter().map(|r| r.src).collect();
        let summary = world.greynoise.summarize(sources.iter());
        assert_eq!(summary.benign, 0, "no benign request sources (§5.2)");
        // 150 sessions at 2.3 % tags: expect a handful, possibly zero
        // in the tiny preset — assert the share is below 10 %.
        assert!(summary.tagged_share() < 0.10);
    }

    #[test]
    fn diurnal_structure_visible_in_aggregate() {
        let mut world = small_world();
        let mut config = ScenarioConfig::test();
        config.request_sessions = 3_000;
        let mut out = Vec::new();
        generate(&mut world, &config, &mut out);
        let mut by_hour = [0u64; 24];
        for r in &out {
            by_hour[r.ts.hour_of_day() as usize] += 1;
        }
        let peak = by_hour[6] + by_hour[18];
        let trough = by_hour[0] + by_hour[12];
        assert!(
            peak as f64 > trough as f64 * 1.5,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn all_packets_request_direction() {
        let (_, out, _) = generated();
        for r in &out {
            assert_eq!(r.transport.dst_port(), Some(QUIC_PORT));
            assert_ne!(r.transport.src_port(), Some(QUIC_PORT));
        }
    }
}
