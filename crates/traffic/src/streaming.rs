//! Constant-memory streaming trace generation for the benchmark scale
//! ladder.
//!
//! [`crate::Scenario::generate`] materializes (and sorts) the whole
//! trace before anything can consume it; at the 10M–100M-record scales
//! a real telescope month produces, that is gigabytes of resident
//! records. [`RecordStream`] instead *yields* scenario-equivalent
//! telescope records as an iterator in globally non-decreasing event
//! time, so arbitrarily long traces flow through the live engine in
//! constant memory.
//!
//! ## Model
//!
//! The stream models the common-protocol flood backscatter component:
//! a fixed pool of flood victims, each emitting internally time-sorted
//! SYN-ACK bursts (~2 pps for ~4 minutes — comfortably over the Moore
//! thresholds) separated by gaps longer than the 5-minute session
//! timeout, so sessions open, close mid-stream, and alert on the
//! common channel exactly like the materialized scenario's floods.
//!
//! ## Memory bound
//!
//! Per-victim state is a fixed-size [`VictimFlow`] (next timestamp,
//! remaining budget, a 64-bit rng word), and the merge across victims
//! is a binary heap holding exactly one entry per victim with records
//! left. Memory is therefore `O(victims)` — independent of
//! [`StreamConfig::records`] — which is the bound DESIGN.md §12
//! documents and the unit tests pin down.
//!
//! ## Sharding
//!
//! A stream can be restricted to the victims of one feed
//! (`victim % shards == shard_index`): each sub-stream stays internally
//! time-sorted, the shards partition the full stream's records exactly,
//! and the per-victim budgets are computed from the *global* victim
//! pool so the union over all shards equals the unsharded stream
//! record-for-record. That makes the sub-streams drop-in feeds for the
//! multi-source `SourceSet` at any fan-in.

use quicsand_net::capture::CaptureError;
use quicsand_net::{Duration, PacketRecord, StreamSource, TcpFlags, Timestamp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;

/// Records per burst; at [`INTRA_BURST_US`] spacing a burst spans
/// ~4 minutes at ~2 pps, well over the Moore floor (25 packets, 60 s,
/// 0.5 pps).
const BURST_LEN: u64 = 512;
/// Base spacing between a burst's records, microseconds (~2 pps).
const INTRA_BURST_US: u64 = 500_000;
/// Gap between a victim's bursts, microseconds — longer than the
/// 5-minute session timeout so every burst closes as its own session.
const INTER_BURST_US: u64 = 400_000_000;
/// Victim start offsets, microseconds: staggered so bursts interleave
/// across victims instead of marching in lockstep.
const STAGGER_US: u64 = 977_003;

/// Parameters of a [`RecordStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Base seed; the same seed always yields the same stream.
    pub seed: u64,
    /// Total records across the whole victim pool (all shards
    /// together). A sharded stream yields its victims' share.
    pub records: u64,
    /// Concurrent flood victims — the constant that bounds memory.
    pub victims: u32,
    /// How many feeds the victim pool is partitioned into.
    pub shards: u32,
    /// Which partition this stream yields (`victim % shards`).
    pub shard_index: u32,
}

impl StreamConfig {
    /// An unsharded stream of `records` records over `victims` victims.
    pub fn new(seed: u64, records: u64, victims: u32) -> Self {
        StreamConfig {
            seed,
            records,
            victims: victims.max(1),
            shards: 1,
            shard_index: 0,
        }
    }

    /// This configuration restricted to one feed of an `n`-way
    /// partition.
    pub fn shard(self, n: u32, index: u32) -> Self {
        assert!(index < n.max(1), "shard index out of range");
        StreamConfig {
            shards: n.max(1),
            shard_index: index,
            ..self
        }
    }

    /// Records this (possibly sharded) stream will yield: the sum of
    /// its victims' budgets.
    pub fn shard_records(&self) -> u64 {
        (0..self.victims)
            .filter(|v| v % self.shards == self.shard_index)
            .map(|v| self.victim_budget(v))
            .sum()
    }

    /// The global pool's budget for victim `v`: an even split of
    /// `records`, with the remainder going to the lowest victim ids.
    fn victim_budget(&self, v: u32) -> u64 {
        let base = self.records / u64::from(self.victims);
        let extra = u64::from(u64::from(v) < self.records % u64::from(self.victims));
        base + extra
    }
}

/// `splitmix64` step: a tiny, seedable, allocation-free rng — one
/// multiply-xor chain per record keeps generation off the profile of
/// the pipeline it feeds.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One victim's fixed-size generation state.
#[derive(Debug, Clone, Copy)]
struct VictimFlow {
    src: Ipv4Addr,
    next_ts: Timestamp,
    /// Position within the current burst.
    burst_pos: u64,
    remaining: u64,
    rng: u64,
}

impl VictimFlow {
    fn new(config: &StreamConfig, v: u32) -> Self {
        VictimFlow {
            src: Ipv4Addr::new(198, 18, (v >> 8) as u8, v as u8),
            next_ts: Timestamp::from_micros(u64::from(v) * STAGGER_US),
            burst_pos: 0,
            remaining: config.victim_budget(v),
            rng: config.seed ^ (u64::from(v).wrapping_mul(0xA24B_AED4_963E_E407)),
        }
    }

    /// Emits the record at `next_ts` and advances the flow.
    fn emit(&mut self) -> PacketRecord {
        let word = splitmix(&mut self.rng);
        let record = PacketRecord::tcp(
            self.next_ts,
            self.src,
            Ipv4Addr::new(10, (word >> 16) as u8, (word >> 8) as u8, word as u8),
            443,
            1_024 + (word % 60_000) as u16,
            TcpFlags::SYN_ACK,
        );
        self.remaining -= 1;
        self.burst_pos += 1;
        let step = if self.burst_pos >= BURST_LEN {
            self.burst_pos = 0;
            INTER_BURST_US
        } else {
            // Jitter keeps per-record timestamps unique per victim
            // while staying strictly increasing.
            INTRA_BURST_US + word % 1_000
        };
        self.next_ts += Duration::from_micros(step);
        record
    }
}

/// A lazily generated, time-sorted telescope record stream; see the
/// module docs for the traffic model and the memory bound.
#[derive(Debug)]
pub struct RecordStream {
    flows: Vec<VictimFlow>,
    /// One `(next timestamp, flow slot)` entry per victim with budget
    /// left — the whole cross-victim merge state.
    heap: BinaryHeap<Reverse<(Timestamp, u32)>>,
    remaining: u64,
}

impl RecordStream {
    /// Builds the stream for `config` (honoring its shard selection).
    pub fn new(config: &StreamConfig) -> Self {
        let flows: Vec<VictimFlow> = (0..config.victims)
            .filter(|v| v % config.shards == config.shard_index)
            .map(|v| VictimFlow::new(config, v))
            .collect();
        let heap = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.remaining > 0)
            .map(|(slot, f)| Reverse((f.next_ts, slot as u32)))
            .collect();
        let remaining = flows.iter().map(|f| f.remaining).sum();
        RecordStream {
            flows,
            heap,
            remaining,
        }
    }

    /// Records not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Live merge entries — never exceeds the victim count, whatever
    /// the record budget (the memory-bound witness).
    pub fn merge_width(&self) -> usize {
        self.heap.len()
    }
}

impl Iterator for RecordStream {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let Reverse((_, slot)) = self.heap.pop()?;
        let flow = &mut self.flows[slot as usize];
        let record = flow.emit();
        if flow.remaining > 0 {
            self.heap.push(Reverse((flow.next_ts, slot)));
        }
        self.remaining -= 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

impl StreamSource for RecordStream {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        self.next().map(Ok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(r: &PacketRecord) -> (u64, u32) {
        // Per-victim timestamps strictly increase and victims have
        // distinct sources, so (ts, src) identifies a record uniquely.
        (r.ts.0, u32::from(r.src))
    }

    #[test]
    fn stream_is_deterministic_and_exact() {
        let config = StreamConfig::new(7, 10_000, 16);
        let a: Vec<_> = RecordStream::new(&config).collect();
        let b: Vec<_> = RecordStream::new(&config).collect();
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_is_time_sorted() {
        let config = StreamConfig::new(3, 20_000, 32);
        let records: Vec<_> = RecordStream::new(&config).collect();
        assert!(records.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Distinct victims actually interleave.
        let firsts: std::collections::BTreeSet<_> =
            records.iter().take(100).map(|r| r.src).collect();
        assert!(firsts.len() > 1, "victims interleave from the start");
    }

    #[test]
    fn shards_partition_the_full_stream_exactly() {
        let config = StreamConfig::new(11, 30_000, 24);
        let full: Vec<_> = RecordStream::new(&config).collect();
        let mut union: Vec<PacketRecord> = Vec::new();
        let mut budgets = 0u64;
        for index in 0..4 {
            let shard = config.shard(4, index);
            budgets += shard.shard_records();
            let part: Vec<_> = RecordStream::new(&shard).collect();
            assert!(
                part.windows(2).all(|w| w[0].ts <= w[1].ts),
                "shard {index} stays time-sorted"
            );
            union.extend(part);
        }
        assert_eq!(budgets, 30_000, "budgets conserve the record count");
        assert_eq!(union.len(), full.len());
        let mut full = full;
        union.sort_by_key(key);
        full.sort_by_key(key);
        assert_eq!(union, full, "shards partition the stream");
    }

    #[test]
    fn merge_state_is_bounded_by_the_victim_pool() {
        let config = StreamConfig::new(1, 200_000, 8);
        let mut stream = RecordStream::new(&config);
        let mut max_width = 0;
        while stream.next().is_some() {
            max_width = max_width.max(stream.merge_width());
        }
        assert!(max_width <= 8, "merge width {max_width} exceeds victims");
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn bursts_clear_the_moore_thresholds_and_close() {
        // One victim: every burst must be alert-worthy (>= 25 packets,
        // >= 60 s, >= 0.5 pps at peak) and separated by more than the
        // 5-minute session timeout so it closes as its own session.
        let config = StreamConfig::new(5, BURST_LEN * 2, 1);
        let records: Vec<_> = RecordStream::new(&config).collect();
        let burst: Vec<_> = records[..BURST_LEN as usize].to_vec();
        let span = burst.last().unwrap().ts.saturating_since(burst[0].ts);
        assert!(burst.len() >= 25 && span.as_micros() >= 60_000_000);
        let gap = records[BURST_LEN as usize]
            .ts
            .saturating_since(burst.last().unwrap().ts);
        assert!(gap.as_micros() > 300_000_000, "gap outlives the timeout");
    }
}
