//! Post-2021 scenario tier: migration abuse, evolving scanners,
//! version drift and Retry amplification.
//!
//! The paper's trace ends in April 2021; the QUIC ecosystem did not.
//! This module layers four workload variants on top of the baseline
//! [`Scenario`] so the detection pipeline can be exercised against the
//! behaviours that emerged afterwards:
//!
//! * [`ScenarioKind::MigrationAbuse`] — request flows that keep a
//!   stable source connection ID while switching source address
//!   mid-session (RFC 9000 §9 connection migration, abused to pivot a
//!   validated path onto a victim address). The sessionizer splits
//!   such a flow per address; the CID-keyed migration linker re-joins
//!   it and the classifier tags the victim with
//!   `VectorKind::MigrationAbuse`.
//! * [`ScenarioKind::EvolvingScanners`] — longitudinal aggressive
//!   scanner profiles: a fixed pool of sources whose cadence
//!   accelerates and whose telescope coverage widens epoch over epoch,
//!   generated lazily by [`EvolvingScanStream`] in `O(scanners)`
//!   memory with exact shard partitioning.
//! * [`ScenarioKind::VersionDrift`] — the version mix moves through
//!   three phases (draft-29/mvfst retirement → v1 dominance → v2
//!   adoption) with Version Negotiation backscatter in the early
//!   phases and a trickle of unregistered-version probes that the
//!   dissector must quarantine as `BadVersion`.
//! * [`ScenarioKind::RetryAmplification`] — flood victims answer
//!   spoofed Initials with address-validation Retry packets (varied
//!   token sizes), feeding `VectorKind::RetryAmplification` in
//!   `classify_multivector_with`.
//!
//! Every kind produces a full [`Scenario`]: the baseline world and
//! flood plan stay intact, the scenario-specific traffic is layered on
//! top, the combined capture is re-sorted and the [`GroundTruth`]
//! component counts keep adding up to the record total.

use crate::config::ScenarioConfig;
use crate::scenario::Scenario;
use bytes::Bytes;
use quicsand_net::capture::CaptureError;
use quicsand_net::rng::{exponential, poisson, substream};
use quicsand_net::{Duration, Ipv4Prefix, PacketRecord, StreamSource, Timestamp};
use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{Packet, PacketPayload};
use quicsand_wire::tls::{cipher_suite, ClientHello};
use quicsand_wire::{ConnectionId, Frame, Version, MIN_INITIAL_SIZE, QUIC_PORT};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// The post-2021 workload variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Mid-session source-address changes under a stable client CID.
    MigrationAbuse,
    /// Longitudinal aggressive-scanner profiles with evolving cadence.
    EvolvingScanners,
    /// Phased v1/v2/draft-retirement version transitions.
    VersionDrift,
    /// Victims answering spoofed Initials with Retry packets.
    RetryAmplification,
}

/// Parse error for [`ScenarioKind`] labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario(pub String);

impl fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scenario {:?} (expected one of: {})",
            self.0,
            ScenarioKind::all()
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

impl ScenarioKind {
    /// Every kind, in stable order.
    pub const fn all() -> [ScenarioKind; 4] {
        [
            ScenarioKind::MigrationAbuse,
            ScenarioKind::EvolvingScanners,
            ScenarioKind::VersionDrift,
            ScenarioKind::RetryAmplification,
        ]
    }

    /// The CLI-facing label.
    pub const fn label(self) -> &'static str {
        match self {
            ScenarioKind::MigrationAbuse => "migration-abuse",
            ScenarioKind::EvolvingScanners => "evolving-scanners",
            ScenarioKind::VersionDrift => "version-drift",
            ScenarioKind::RetryAmplification => "retry-amplification",
        }
    }

    /// Generates this kind's scenario for `config`.
    pub fn generate(self, config: &ScenarioConfig) -> Scenario {
        generate(self, config)
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ScenarioKind {
    type Err = UnknownScenario;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioKind::all()
            .into_iter()
            .find(|k| k.label() == s)
            .ok_or_else(|| UnknownScenario(s.to_string()))
    }
}

/// Generates the scenario for `kind` on top of the `config` baseline.
pub fn generate(kind: ScenarioKind, config: &ScenarioConfig) -> Scenario {
    match kind {
        ScenarioKind::MigrationAbuse => migration_abuse(config),
        ScenarioKind::EvolvingScanners => evolving_scanners(config),
        ScenarioKind::VersionDrift => version_drift(config),
        ScenarioKind::RetryAmplification => retry_amplification(config),
    }
}

/// A minimal, valid client Initial with a caller-chosen version and
/// SCID (the SCID is what the migration linker keys on, so migrating
/// flows must pin it while everything else stays randomized).
fn probe_with(rng: &mut ChaCha12Rng, version: Version, scid: ConnectionId) -> Bytes {
    let dcid = ConnectionId::from_u64(rng.gen());
    let keys = InitialSecrets::derive(version, &dcid);
    let hello = ClientHello {
        random: rng.gen(),
        cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
        server_name: None,
        alpn: vec!["h3".to_string()],
        key_share: Bytes::from(rng.gen::<[u8; 32]>().to_vec()),
    };
    let wire = Packet::Initial {
        version,
        dcid,
        scid,
        token: Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Crypto {
            offset: 0,
            data: Bytes::from(hello.encode()),
        }]),
    }
    .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
    .expect("initial encodes");
    Bytes::from(wire)
}

// ---------------------------------------------------------------------
// Migration abuse
// ---------------------------------------------------------------------

/// Packets on each side of the address change — enough to sessionize
/// cleanly on both addresses.
const MIGRATION_HALF_PACKETS: u32 = 14;
/// Minimum spacing between same-victim migration flows: flow span plus
/// the 5-minute session timeout, so consecutive flows never merge.
const MIGRATION_SLOT_SECS: u64 = 900;

/// How many migrating flows a config carries.
fn migration_flow_count(config: &ScenarioConfig) -> usize {
    let max_flows = (config.duration_secs() / MIGRATION_SLOT_SECS).max(1);
    ((config.request_sessions / 10).max(6)).min(max_flows) as usize
}

/// Migrating-scanner source block: dedicated (CGNAT space) so baseline
/// eyeball scanners can never share an address — and hence a session —
/// with a migrating flow.
fn migration_source(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(100, 66, (i >> 8) as u8, i as u8)
}

fn migration_abuse(config: &ScenarioConfig) -> Scenario {
    let mut scenario = Scenario::generate(config);
    let mut rng = substream(config.seed, "migration-abuse");
    let telescope = scenario.world.telescope;
    let victims = scenario.truth.plan.victims.clone();
    let flows = migration_flow_count(config);
    let slot = config.duration_secs() / flows as u64;

    let mut extra = Vec::new();
    for i in 0..flows {
        let scanner = migration_source(i);
        let victim = victims[i % victims.len()];
        // The stable SCID is the flow identity the linker recovers.
        let scid = ConnectionId::from_u64(rng.gen());
        let payload = probe_with(&mut rng, Version::V1, scid);
        let src_port = rng.gen_range(1_024..65_000);
        let mut ts = Timestamp::from_secs(i as u64 * slot)
            + Duration::from_micros(rng.gen_range(0..1_000_000));
        // First half: the validated path from the scanner's address.
        for _ in 0..MIGRATION_HALF_PACKETS {
            extra.push(PacketRecord::udp(
                ts,
                scanner,
                telescope.sample(&mut rng),
                src_port,
                QUIC_PORT,
                payload.clone(),
            ));
            // 4–8 s spacing: bounded well under the session timeout.
            ts += Duration::from_millis(4_000 + rng.gen_range(0..4_000u64));
        }
        // The migration: the flow reappears from the victim's address
        // within the session timeout, same CID, same port.
        ts += Duration::from_secs(rng.gen_range(20..150));
        for _ in 0..MIGRATION_HALF_PACKETS {
            extra.push(PacketRecord::udp(
                ts,
                victim,
                telescope.sample(&mut rng),
                src_port,
                QUIC_PORT,
                payload.clone(),
            ));
            ts += Duration::from_millis(4_000 + rng.gen_range(0..4_000u64));
        }
    }

    scenario.truth.request_packets += extra.len() as u64;
    scenario.records.extend(extra);
    scenario.records.sort_by_key(|r| r.ts);
    scenario
}

// ---------------------------------------------------------------------
// Retry amplification
// ---------------------------------------------------------------------

/// Address-validation token sizes in the wild vary with the server's
/// token construction; the amplification factor varies with them.
const RETRY_TOKEN_LENGTHS: [usize; 5] = [16, 32, 64, 96, 128];

fn retry_amplification(config: &ScenarioConfig) -> Scenario {
    let mut scenario = Scenario::generate(config);
    let mut rng = substream(config.seed, "retry-amplification");
    let telescope = scenario.world.telescope;

    let mut extra = Vec::new();
    for (i, attack) in scenario.truth.plan.quic.iter().enumerate() {
        // Every other flood hits a Retry-validating victim.
        if i % 2 != 0 {
            continue;
        }
        let version = Version::from_wire(attack.version_wire);
        let rate = attack.visible_probe_rate.max(0.8);
        for sec in 0..attack.duration_secs {
            let retries = poisson(&mut rng, rate);
            for _ in 0..retries {
                let ts = Timestamp::from_secs(attack.start_secs + sec)
                    + Duration::from_micros(rng.gen_range(0..1_000_000));
                let token_len = RETRY_TOKEN_LENGTHS[rng.gen_range(0..RETRY_TOKEN_LENGTHS.len())];
                let mut token = vec![0u8; token_len];
                rng.fill(&mut token[..]);
                let wire = Packet::Retry {
                    version,
                    dcid: ConnectionId::from_u64(u64::from(rng.gen::<u32>())),
                    scid: ConnectionId::from_u64(rng.gen()),
                    token: Bytes::from(token),
                    original_dcid: ConnectionId::from_u64(rng.gen()),
                }
                .encode(None)
                .expect("retry encodes");
                extra.push(PacketRecord::udp(
                    ts,
                    attack.victim,
                    telescope.sample(&mut rng),
                    QUIC_PORT,
                    rng.gen_range(1_024..65_000),
                    Bytes::from(wire),
                ));
            }
        }
    }

    scenario.truth.response_packets += extra.len() as u64;
    scenario.records.extend(extra);
    scenario.records.sort_by_key(|r| r.ts);
    scenario
}

// ---------------------------------------------------------------------
// Version drift
// ---------------------------------------------------------------------

/// An unregistered draft number (draft-31) — dissects to
/// `BadVersion` and lands in the quarantine counters.
const UNREGISTERED_VERSION: u32 = 0xff00_001f;

/// The version a scan starting at `start_secs` speaks: draft-29 and
/// mvfst retire through the first phase, v1 dominates the second, v2
/// takes over in the third with v1 lingering.
fn drift_version(start_secs: u64, duration: u64, rng: &mut ChaCha12Rng) -> Version {
    match (start_secs * 3) / duration.max(1) {
        0 => {
            if rng.gen_bool(0.3) {
                Version::MvfstDraft27
            } else {
                Version::Draft29
            }
        }
        1 => {
            if rng.gen_bool(0.15) {
                Version::Draft29
            } else {
                Version::V1
            }
        }
        _ => {
            if rng.gen_bool(0.3) {
                Version::V1
            } else {
                Version::V2
            }
        }
    }
}

/// Drift-scanner source block (outside eyeball and telescope space).
fn drift_source(s: u64) -> Ipv4Addr {
    Ipv4Addr::new(100, 70, (s >> 8) as u8, s as u8)
}

/// Dedicated servers answering early-phase probes with Version
/// Negotiation; not flood victims, so their tiny response sessions
/// stay below the Moore thresholds.
fn vn_server(k: u64) -> Ipv4Addr {
    Ipv4Addr::new(100, 71, (k >> 8) as u8, k as u8)
}

fn version_drift(config: &ScenarioConfig) -> Scenario {
    // The flat all-v1 baseline scanners would drown the drift signal;
    // phased scans below replace them.
    let mut base = config.clone();
    base.request_sessions = 0;
    let mut scenario = Scenario::generate(&base);
    let mut rng = substream(config.seed, "version-drift");
    let telescope = scenario.world.telescope;
    let duration = config.duration_secs();
    let sessions = config.request_sessions.max(30);

    let mut extra = Vec::new();
    let mut request_added = 0u64;
    let mut response_added = 0u64;

    // Phased request scans.
    for s in 0..sessions {
        let start_secs = rng.gen_range(0..duration);
        let version = drift_version(start_secs, duration, &mut rng);
        let src = drift_source(s);
        let scid = ConnectionId::from_u64(u64::from(rng.gen::<u32>()));
        let payload = probe_with(&mut rng, version, scid);
        let src_port = rng.gen_range(1_024..65_000);
        let mut ts = Timestamp::from_secs(start_secs);
        let packets = 1 + poisson(&mut rng, config.request_session_mean_packets - 1.0);
        for _ in 0..packets {
            if ts.as_secs() >= duration {
                break;
            }
            extra.push(PacketRecord::udp(
                ts,
                src,
                telescope.sample(&mut rng),
                src_port,
                QUIC_PORT,
                payload.clone(),
            ));
            request_added += 1;
            ts += Duration::from_secs_f64(exponential(&mut rng, 15.0));
        }
    }

    // Version Negotiation backscatter, concentrated in the first two
    // phases while retired drafts are still being probed.
    let vn_packets = (sessions / 5).max(12);
    for k in 0..vn_packets {
        let ts = Timestamp::from_secs(rng.gen_range(0..(duration * 2) / 3));
        let wire = Packet::VersionNegotiation {
            dcid: ConnectionId::from_u64(u64::from(rng.gen::<u32>())),
            scid: ConnectionId::from_u64(rng.gen()),
            versions: vec![Version::V1, Version::V2],
        }
        .encode(None)
        .expect("vn encodes");
        extra.push(PacketRecord::udp(
            ts,
            vn_server(k),
            telescope.sample(&mut rng),
            QUIC_PORT,
            rng.gen_range(1_024..65_000),
            Bytes::from(wire),
        ));
        response_added += 1;
    }

    // A trickle of unregistered-version probes in the late phase —
    // scanners experimenting past the registry, quarantined by the
    // dissector as `BadVersion`.
    let unknown_probes = (sessions / 10).max(6);
    for u in 0..unknown_probes {
        let ts = Timestamp::from_secs(rng.gen_range((duration * 2) / 3..duration));
        let scid = ConnectionId::from_u64(u64::from(rng.gen::<u32>()));
        let payload = probe_with(&mut rng, Version::from_wire(UNREGISTERED_VERSION), scid);
        extra.push(PacketRecord::udp(
            ts,
            drift_source(sessions + u),
            telescope.sample(&mut rng),
            rng.gen_range(1_024..65_000),
            QUIC_PORT,
            payload,
        ));
        request_added += 1;
    }

    scenario.truth.request_packets += request_added;
    scenario.truth.response_packets += response_added;
    scenario.records.extend(extra);
    scenario.records.sort_by_key(|r| r.ts);
    scenario
}

// ---------------------------------------------------------------------
// Evolving scanners
// ---------------------------------------------------------------------

/// Longitudinal epochs ("weeks" at paper scale): cadence accelerates
/// and coverage widens from one epoch to the next.
const SCAN_EPOCHS: u64 = 4;

/// Parameters of an [`EvolvingScanStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvolvingScanConfig {
    /// Base seed; the same seed always yields the same stream.
    pub seed: u64,
    /// Total records across the whole scanner pool (all shards).
    pub records: u64,
    /// Scanner sources — the constant that bounds memory.
    pub scanners: u32,
    /// How many feeds the scanner pool is partitioned into.
    pub shards: u32,
    /// Which partition this stream yields (`scanner % shards`).
    pub shard_index: u32,
    /// Where probes land — every record's destination stays inside.
    pub telescope: Ipv4Prefix,
    /// The schedule horizon the epochs divide.
    pub horizon_secs: u64,
}

impl EvolvingScanConfig {
    /// An unsharded stream of `records` probes from `scanners` sources
    /// over `horizon_secs`, aimed at `telescope`.
    pub fn new(
        seed: u64,
        records: u64,
        scanners: u32,
        telescope: Ipv4Prefix,
        horizon_secs: u64,
    ) -> Self {
        EvolvingScanConfig {
            seed,
            records,
            scanners: scanners.max(1),
            shards: 1,
            shard_index: 0,
            telescope,
            horizon_secs: horizon_secs.max(SCAN_EPOCHS),
        }
    }

    /// This configuration restricted to one feed of an `n`-way
    /// partition.
    pub fn shard(self, n: u32, index: u32) -> Self {
        assert!(index < n.max(1), "shard index out of range");
        EvolvingScanConfig {
            shards: n.max(1),
            shard_index: index,
            ..self
        }
    }

    /// Records this (possibly sharded) stream will yield.
    pub fn shard_records(&self) -> u64 {
        (0..self.scanners)
            .filter(|s| s % self.shards == self.shard_index)
            .map(|s| self.scanner_budget(s))
            .sum()
    }

    /// The global pool's budget for scanner `s`: an even split with
    /// the remainder going to the lowest ids.
    fn scanner_budget(&self, s: u32) -> u64 {
        let base = self.records / u64::from(self.scanners);
        let extra = u64::from(u64::from(s) < self.records % u64::from(self.scanners));
        base + extra
    }

    /// Base inter-probe gap in microseconds for the first epoch; later
    /// epochs divide it by the epoch multiplier.
    fn base_gap_us(&self) -> u64 {
        let per_scanner = (self.records / u64::from(self.scanners)).max(1);
        ((self.horizon_secs * 1_000_000 * 2) / per_scanner).max(1_000)
    }
}

/// `splitmix64` step (same allocation-free rng the record stream
/// uses).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scanner's fixed-size generation state.
#[derive(Debug, Clone)]
struct ScannerFlow {
    src: Ipv4Addr,
    /// The scanner's (stable) probe datagram.
    payload: Bytes,
    src_port: u16,
    next_ts: Timestamp,
    remaining: u64,
    rng: u64,
    telescope: Ipv4Prefix,
    horizon_secs: u64,
    base_gap_us: u64,
}

impl ScannerFlow {
    fn new(config: &EvolvingScanConfig, s: u32) -> Self {
        let mut probe_rng = substream(config.seed ^ u64::from(s), "evolving-scan-probe");
        // The SCID is stable per scanner: aggressive scanners reuse
        // connection contexts across probes.
        let scid = ConnectionId::from_u64(config.seed ^ (u64::from(s) << 17));
        ScannerFlow {
            src: Ipv4Addr::new(100, 72, (s >> 8) as u8, s as u8),
            payload: probe_with(&mut probe_rng, Version::V1, scid),
            src_port: 1_024 + (s % 60_000) as u16,
            next_ts: Timestamp::from_micros(u64::from(s).wrapping_mul(611_953) % 5_000_000),
            remaining: config.scanner_budget(s),
            rng: config.seed ^ (u64::from(s).wrapping_mul(0xA24B_AED4_963E_E407)),
            telescope: config.telescope,
            horizon_secs: config.horizon_secs,
            base_gap_us: config.base_gap_us(),
        }
    }

    /// The longitudinal epoch `next_ts` falls in (clamped to the last
    /// epoch once the schedule horizon is exhausted).
    fn epoch(&self) -> u64 {
        ((self.next_ts.as_secs() * SCAN_EPOCHS) / self.horizon_secs).min(SCAN_EPOCHS - 1)
    }

    /// Emits the record at `next_ts` and advances the flow.
    fn emit(&mut self) -> PacketRecord {
        let word = splitmix(&mut self.rng);
        let epoch = self.epoch();
        // Coverage widens with the epoch: early probes confine
        // themselves to the telescope's low end, later sweeps span it.
        let span = (self.telescope.size() * (epoch + 1)) / SCAN_EPOCHS;
        let dst = self.telescope.nth(word % span.max(1));
        let record = PacketRecord::udp(
            self.next_ts,
            self.src,
            dst,
            self.src_port,
            QUIC_PORT,
            self.payload.clone(),
        );
        self.remaining -= 1;
        // Cadence accelerates with the epoch; jitter keeps per-scanner
        // timestamps strictly increasing.
        let step = self.base_gap_us / (epoch + 1) + word % 1_000;
        self.next_ts += Duration::from_micros(step.max(1));
        record
    }
}

/// A lazily generated, time-sorted stream of evolving scan probes; see
/// the module docs for the longitudinal model and the memory bound.
#[derive(Debug)]
pub struct EvolvingScanStream {
    flows: Vec<ScannerFlow>,
    /// One `(next timestamp, flow slot)` entry per scanner with budget
    /// left — the whole cross-scanner merge state.
    heap: BinaryHeap<Reverse<(Timestamp, u32)>>,
    remaining: u64,
}

impl EvolvingScanStream {
    /// Builds the stream for `config` (honoring its shard selection).
    pub fn new(config: &EvolvingScanConfig) -> Self {
        let flows: Vec<ScannerFlow> = (0..config.scanners)
            .filter(|s| s % config.shards == config.shard_index)
            .map(|s| ScannerFlow::new(config, s))
            .collect();
        let heap = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.remaining > 0)
            .map(|(slot, f)| Reverse((f.next_ts, slot as u32)))
            .collect();
        let remaining = flows.iter().map(|f| f.remaining).sum();
        EvolvingScanStream {
            flows,
            heap,
            remaining,
        }
    }

    /// Records not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Live merge entries — never exceeds the scanner count, whatever
    /// the record budget (the memory-bound witness).
    pub fn merge_width(&self) -> usize {
        self.heap.len()
    }
}

impl Iterator for EvolvingScanStream {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let Reverse((_, slot)) = self.heap.pop()?;
        let flow = &mut self.flows[slot as usize];
        let record = flow.emit();
        if flow.remaining > 0 {
            self.heap.push(Reverse((flow.next_ts, slot)));
        }
        self.remaining -= 1;
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).ok();
        (n.unwrap_or(usize::MAX), n)
    }
}

impl StreamSource for EvolvingScanStream {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        self.next().map(Ok)
    }
}

/// The stream configuration [`ScenarioKind::EvolvingScanners`]
/// materializes for `config` and `telescope`.
pub fn evolving_scan_config(config: &ScenarioConfig, telescope: Ipv4Prefix) -> EvolvingScanConfig {
    let records =
        ((config.request_sessions as f64) * config.request_session_mean_packets).ceil() as u64;
    let scanners = ((config.request_sessions / 8).clamp(8, 256)) as u32;
    EvolvingScanConfig::new(
        config.seed,
        records.max(200),
        scanners,
        telescope,
        config.duration_secs(),
    )
}

fn evolving_scanners(config: &ScenarioConfig) -> Scenario {
    // The evolving pool replaces the baseline's memoryless scanners.
    let mut base = config.clone();
    base.request_sessions = 0;
    let mut scenario = Scenario::generate(&base);
    let stream_config = evolving_scan_config(config, scenario.world.telescope);
    let extra: Vec<PacketRecord> = EvolvingScanStream::new(&stream_config).collect();
    scenario.truth.request_packets += extra.len() as u64;
    scenario.records.extend(extra);
    scenario.records.sort_by_key(|r| r.ts);
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_dissect::{classify_record, dissect_udp_payload, Classification, Direction};

    fn key(r: &PacketRecord) -> (u64, u32, Option<u16>) {
        (r.ts.0, u32::from(r.src), r.transport.src_port())
    }

    #[test]
    fn labels_roundtrip() {
        for kind in ScenarioKind::all() {
            assert_eq!(kind.label().parse::<ScenarioKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        let err = "quantum-scan".parse::<ScenarioKind>().unwrap_err();
        assert!(err.to_string().contains("migration-abuse"));
    }

    fn check_scenario_invariants(s: &Scenario) {
        assert!(!s.records.is_empty());
        for w in s.records.windows(2) {
            assert!(w[0].ts <= w[1].ts, "capture stays time-sorted");
        }
        let total = s.truth.research_packets
            + s.truth.request_packets
            + s.truth.response_packets
            + s.truth.common_packets
            + s.truth.garbage_packets;
        assert_eq!(total, s.records.len() as u64, "component counts add up");
        for r in &s.records {
            assert!(s.world.telescope.contains(r.dst), "dst inside telescope");
        }
    }

    #[test]
    fn migration_abuse_holds_invariants_and_migrates_onto_victims() {
        let config = ScenarioConfig::test();
        let s = generate(ScenarioKind::MigrationAbuse, &config);
        check_scenario_invariants(&s);
        // Some request-direction packets originate from flood victims —
        // the migrated halves of the abusive flows.
        let victims: std::collections::HashSet<_> = s.truth.plan.victims.iter().collect();
        let migrated = s
            .records
            .iter()
            .filter(|r| {
                classify_record(r) == Classification::QuicCandidate(Direction::Request)
                    && victims.contains(&r.src)
            })
            .count();
        let flows = migration_flow_count(&config);
        assert!(
            migrated >= flows * MIGRATION_HALF_PACKETS as usize,
            "expected migrated request halves, saw {migrated}"
        );
    }

    #[test]
    fn retry_amplification_emits_valid_varied_retries() {
        let s = generate(ScenarioKind::RetryAmplification, &ScenarioConfig::test());
        check_scenario_invariants(&s);
        let mut token_lens = std::collections::HashSet::new();
        let mut retries = 0u64;
        for r in &s.records {
            let Some(payload) = r.udp_payload() else {
                continue;
            };
            if let Ok(d) = dissect_udp_payload(payload) {
                if d.has_retry() {
                    retries += 1;
                    token_lens.insert(payload.len());
                }
            }
        }
        assert!(retries > 100, "retry storm visible, saw {retries}");
        assert!(token_lens.len() >= 3, "token sizes vary: {token_lens:?}");
    }

    #[test]
    fn version_drift_moves_through_phases() {
        let config = ScenarioConfig::test();
        let s = generate(ScenarioKind::VersionDrift, &config);
        check_scenario_invariants(&s);
        let duration = config.duration_secs();
        let mut early = std::collections::HashMap::new();
        let mut late = std::collections::HashMap::new();
        let mut bad_version = 0u64;
        for r in &s.records {
            if classify_record(r) != Classification::QuicCandidate(Direction::Request) {
                continue;
            }
            let Some(payload) = r.udp_payload() else {
                continue;
            };
            match dissect_udp_payload(payload) {
                Ok(d) => {
                    if let Some(v) = d.version() {
                        let phase = (r.ts.as_secs() * 3) / duration;
                        let bucket = if phase == 0 { &mut early } else { &mut late };
                        if phase != 1 {
                            *bucket.entry(v).or_insert(0u64) += 1;
                        }
                    }
                }
                Err(quicsand_dissect::DissectError::BadVersion(v)) => {
                    assert_eq!(v, UNREGISTERED_VERSION);
                    bad_version += 1;
                }
                Err(_) => {}
            }
        }
        let v2 = Version::V2.to_wire();
        assert!(
            early.get(&Version::Draft29.to_wire()).copied().unwrap_or(0) > 0,
            "draft-29 present early"
        );
        assert_eq!(early.get(&v2), None, "v2 absent early");
        assert!(
            late.get(&v2).copied().unwrap_or(0) > 0,
            "v2 adopted late: {late:?}"
        );
        assert!(bad_version > 0, "unregistered probes quarantined");
        // Version Negotiation backscatter present.
        let vn = s
            .records
            .iter()
            .filter_map(|r| r.udp_payload())
            .filter_map(|p| dissect_udp_payload(p).ok())
            .filter(|d| d.version() == Some(0))
            .count();
        assert!(vn > 0, "version negotiation visible");
    }

    #[test]
    fn evolving_scanners_materializes_with_invariants() {
        let s = generate(ScenarioKind::EvolvingScanners, &ScenarioConfig::test());
        check_scenario_invariants(&s);
    }

    #[test]
    fn evolving_stream_is_deterministic_sorted_and_bounded() {
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = EvolvingScanConfig::new(9, 20_000, 16, telescope, 86_400 * 14);
        let a: Vec<_> = EvolvingScanStream::new(&config).collect();
        let b: Vec<_> = EvolvingScanStream::new(&config).collect();
        assert_eq!(a.len(), 20_000);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts));
        let mut stream = EvolvingScanStream::new(&config);
        let mut max_width = 0;
        while stream.next().is_some() {
            max_width = max_width.max(stream.merge_width());
        }
        assert!(max_width <= 16, "merge width {max_width} exceeds scanners");
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn evolving_stream_shards_partition_exactly() {
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = EvolvingScanConfig::new(3, 15_000, 24, telescope, 86_400 * 14);
        let full: Vec<_> = EvolvingScanStream::new(&config).collect();
        let mut union: Vec<PacketRecord> = Vec::new();
        let mut budgets = 0u64;
        for index in 0..3 {
            let shard = config.shard(3, index);
            budgets += shard.shard_records();
            let part: Vec<_> = EvolvingScanStream::new(&shard).collect();
            assert!(part.windows(2).all(|w| w[0].ts <= w[1].ts));
            union.extend(part);
        }
        assert_eq!(budgets, 15_000, "budgets conserve the record count");
        let mut full = full;
        union.sort_by_key(key);
        full.sort_by_key(key);
        assert_eq!(union, full, "shards partition the stream");
    }

    #[test]
    fn evolving_stream_cadence_accelerates() {
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = EvolvingScanConfig::new(5, 8_000, 1, telescope, 86_400 * 28);
        let records: Vec<_> = EvolvingScanStream::new(&config).collect();
        let quarter = records.len() / 4;
        let gap = |slice: &[PacketRecord]| {
            slice
                .windows(2)
                .map(|w| w[1].ts.saturating_since(w[0].ts).as_micros())
                .sum::<u64>() as f64
                / (slice.len() - 1) as f64
        };
        let first = gap(&records[..quarter]);
        let last = gap(&records[records.len() - quarter..]);
        assert!(
            last < first * 0.6,
            "cadence accelerates: first-quarter gap {first}, last {last}"
        );
        // Coverage widens: the late sweep reaches addresses the early
        // one never touches.
        let max_early = records[..quarter].iter().map(|r| u32::from(r.dst)).max();
        let max_late = records[records.len() - quarter..]
            .iter()
            .map(|r| u32::from(r.dst))
            .max();
        assert!(max_late > max_early, "coverage widens across epochs");
    }

    #[test]
    fn generation_is_deterministic_per_kind() {
        for kind in ScenarioKind::all() {
            let a = generate(kind, &ScenarioConfig::test());
            let b = generate(kind, &ScenarioConfig::test());
            assert_eq!(a.records.len(), b.records.len(), "{kind}");
            assert_eq!(a.records[..50], b.records[..50], "{kind}");
            assert_eq!(a.truth, b.truth, "{kind}");
        }
    }
}
