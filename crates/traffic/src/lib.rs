//! # quicsand-traffic
//!
//! Synthetic Internet-background-radiation scenario generator — the
//! substitute for the (unavailable) UCSD telescope trace of April 2021.
//!
//! The generator produces the telescope-visible packet stream from first
//! principles: research scanners sweep the address space, malicious
//! scanners probe diurnally from eyeball networks, spoofed QUIC floods
//! elicit backscatter from content-provider servers (sampled into the
//! /9 with the correct 1/512 probability), TCP/ICMP floods provide the
//! common-protocol baseline, and misconfigured hosts add low-volume
//! noise. Every component is parameterized by the population statistics
//! the paper reports, **not** by per-figure outputs — the analyses must
//! rediscover the paper's findings from the packets.
//!
//! Modules:
//!
//! * [`config`] — scenario knobs with `test()` and `paper_month()`
//!   presets, including the documented sub-sampling factors.
//! * [`backscatter`] — QUIC server response synthesis (the §6 flight:
//!   Initial+Handshake coalesced, a trailing Handshake, occasional
//!   keep-alives), per provider profile.
//! * [`research`] — TUM/RWTH full-IPv4 sweeps (Fig. 2 bias).
//! * [`scanners`] — malicious request scans (diurnal, eyeball origins,
//!   GreyNoise-tagged).
//! * [`floods`] — QUIC flood backscatter plus orchestrated TCP/ICMP
//!   floods for the multi-vector structure (Figs. 6–13).
//! * [`misconfig`] — low-volume response noise (Appendix B).
//! * [`scenario`] — the orchestrator producing a time-sorted capture
//!   and the ground truth for validation.
//! * [`scenarios`] — the post-2021 workload tier: connection-migration
//!   abuse, evolving aggressive scanners, version drift and Retry
//!   amplification, layered on the baseline scenario.
//! * [`streaming`] — constant-memory lazy record generation for the
//!   benchmark scale ladder (10M+ records without materializing).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backscatter;
pub mod config;
pub mod floods;
pub mod misconfig;
pub mod research;
pub mod scanners;
pub mod scenario;
pub mod scenarios;
pub mod streaming;

pub use config::ScenarioConfig;
pub use scenario::{GroundTruth, Scenario};
pub use scenarios::{EvolvingScanConfig, EvolvingScanStream, ScenarioKind, UnknownScenario};
pub use streaming::{RecordStream, StreamConfig};
