//! Flood planning and generation (Figs. 6–9, 11–13).
//!
//! The planner first builds the *attack plan* — victims, windows, rates
//! and the multi-vector structure — then the generator materializes the
//! telescope-visible packets:
//!
//! * QUIC floods spoof client addresses; the victim's responses to the
//!   spoofed identities inside the /9 are what the telescope captures.
//!   Per §5.2/Fig. 9, attackers rotate a *small* pool of spoofed
//!   addresses but randomize ports aggressively — ports, not addresses,
//!   drive server-side SCID allocation.
//! * TCP/ICMP floods produce classic backscatter (SYN-ACK, RST, ICMP)
//!   and are placed relative to QUIC floods to realize the paper's
//!   51 % concurrent / 40 % sequential / 9 % isolated mix, plus an
//!   independent background population for the Fig. 7 baseline.

use crate::backscatter::BackscatterBuilder;
use crate::config::ScenarioConfig;
use quicsand_intel::{Provider, SyntheticInternet};
use quicsand_net::rng::{lognormal_by_median, poisson, substream};
use quicsand_net::{Duration, IcmpKind, PacketRecord, TcpFlags, Timestamp};
use quicsand_wire::QUIC_PORT;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Planned multi-vector role of a QUIC flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlannedClass {
    /// Overlapping a common flood.
    Concurrent,
    /// Same victim, disjoint in time.
    Sequential,
    /// Victim never sees a common flood.
    Isolated,
}

/// A planned QUIC flood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedQuicAttack {
    /// The victim server.
    pub victim: Ipv4Addr,
    /// Operating provider (drives backscatter behaviour).
    pub provider: Provider,
    /// The victim's QUIC version wire value.
    pub version_wire: u32,
    /// Start second (since epoch).
    pub start_secs: u64,
    /// Duration in seconds.
    pub duration_secs: u64,
    /// Telescope-visible probe rate (probes/s landing on spoofed
    /// addresses inside the /9).
    pub visible_probe_rate: f64,
    /// Planned multi-vector class.
    pub class: PlannedClass,
    /// The spoofed client addresses inside the telescope this attack
    /// rotates through.
    pub spoof_pool: Vec<Ipv4Addr>,
}

/// Kinds of common-protocol backscatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommonKind {
    /// TCP SYN-ACK (victim of a SYN flood).
    TcpSynAck,
    /// TCP RST.
    TcpRst,
    /// TCP RST-ACK.
    TcpRstAck,
    /// ICMP echo reply (ping flood victim).
    IcmpEchoReply,
    /// ICMP destination unreachable (UDP flood victim).
    IcmpDestUnreachable,
}

/// A planned TCP/ICMP flood.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedCommonAttack {
    /// The victim.
    pub victim: Ipv4Addr,
    /// Start second.
    pub start_secs: u64,
    /// Duration in seconds.
    pub duration_secs: u64,
    /// Telescope-visible packet rate (pps).
    pub visible_pps: f64,
    /// Backscatter kind.
    pub kind: CommonKind,
}

/// The complete attack plan (also the scenario ground truth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// QUIC floods.
    pub quic: Vec<PlannedQuicAttack>,
    /// Common floods (multi-vector companions + background).
    pub common: Vec<PlannedCommonAttack>,
    /// The distinct QUIC flood victims.
    pub victims: Vec<Ipv4Addr>,
}

/// Minimum separation between two QUIC floods on the same victim so
/// the 5-minute sessionization never merges them.
const SAME_VICTIM_SEPARATION_SECS: u64 = 660;

/// Builds the attack plan.
pub fn plan(world: &SyntheticInternet, config: &ScenarioConfig) -> AttackPlan {
    let mut rng = substream(config.seed, "attack-plan");
    let horizon = config.duration_secs();

    // --- Attack counts per victim: >half attacked once, heavy tail on
    // the rest (Fig. 6). Victim identities are assigned afterwards so
    // per-provider *attack* shares can be balanced. ---
    let pool_size = config.victim_pool;
    let n_single = ((pool_size as f64) * config.single_attack_victim_share).round() as usize;
    let n_single = n_single.min(pool_size).min(config.quic_attacks as usize);
    let n_multi = pool_size - n_single;
    let remaining = config.quic_attacks - n_single as u64;
    let mut counts = vec![1u64; n_single];
    if n_multi > 0 {
        // Zipf weights over the multi-attack victims.
        let weights: Vec<f64> = (1..=n_multi).map(|k| 1.0 / (k as f64).powf(0.85)).collect();
        let total: f64 = weights.iter().sum();
        let mut assigned = 0u64;
        let mut multi_counts: Vec<u64> = weights
            .iter()
            .map(|w| {
                let c = 1
                    + ((w / total) * remaining.saturating_sub(n_multi as u64) as f64).floor()
                        as u64;
                assigned += c;
                c
            })
            .collect();
        // Distribute the rounding remainder to the head.
        let mut leftover = remaining.saturating_sub(assigned);
        let mut i = 0;
        while leftover > 0 {
            multi_counts[i % n_multi] += 1;
            leftover -= 1;
            i += 1;
        }
        counts.extend(multi_counts);
    } else if remaining > 0 {
        // Degenerate tiny configs: pile the rest on the singles.
        for i in 0..remaining as usize {
            counts[i % n_single] += 1;
        }
    }

    // --- Assign victim identities to count slots so per-provider
    // *attack* shares match the paper (Fig. 9: 58 % Google, 25 %
    // Facebook): hand each slot, heaviest first, to the provider with
    // the most remaining attack budget and draw a fresh server of that
    // provider from the active-scan registry. ---
    let victims: Vec<(Ipv4Addr, Provider)> = {
        let total_attacks: f64 = counts.iter().sum::<u64>() as f64;
        let mut budgets: Vec<(Provider, f64)> = quicsand_intel::topology::PROVIDER_ATTACK_SHARES
            .iter()
            .map(|(p, share)| (*p, share * total_attacks))
            .collect();
        let mut used: std::collections::HashSet<Ipv4Addr> = std::collections::HashSet::new();
        let mut slot_order: Vec<usize> = (0..counts.len()).collect();
        slot_order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut assigned: Vec<Option<(Ipv4Addr, Provider)>> = vec![None; counts.len()];
        for slot in slot_order {
            // Prefer the provider with the largest remaining budget
            // whose registry still has unused servers.
            let mut order: Vec<Provider> = budgets.iter().map(|(p, _)| *p).collect();
            order.sort_by(|a, b| {
                let ba = budgets.iter().find(|(p, _)| p == a).expect("known").1;
                let bb = budgets.iter().find(|(p, _)| p == b).expect("known").1;
                bb.partial_cmp(&ba).expect("no NaN")
            });
            let mut chosen = None;
            for provider in order {
                let servers = world.provider_servers(provider);
                if let Some(addr) = servers.iter().find(|a| !used.contains(a)) {
                    chosen = Some((*addr, provider));
                    break;
                }
            }
            let (addr, provider) = chosen.expect("registry has enough servers");
            used.insert(addr);
            for (p, budget) in &mut budgets {
                if *p == provider {
                    *budget -= counts[slot] as f64;
                }
            }
            assigned[slot] = Some((addr, provider));
        }
        assigned
            .into_iter()
            .map(|v| v.expect("every slot assigned"))
            .collect()
    };

    // --- Mark isolated victims: accumulate lightest victims until ~9 %
    // of attacks live on them. ---
    let isolated_target = ((1.0 - config.concurrent_share - config.sequential_share)
        * config.quic_attacks as f64)
        .round() as u64;
    let mut order: Vec<usize> = (0..victims.len()).collect();
    order.sort_by_key(|&i| counts[i]);
    let mut isolated_victims = std::collections::HashSet::new();
    let mut isolated_attacks = 0u64;
    for &i in &order {
        if isolated_attacks >= isolated_target {
            break;
        }
        isolated_victims.insert(victims[i].0);
        isolated_attacks += counts[i];
    }

    // --- Place QUIC attacks. ---
    let mut quic = Vec::with_capacity(config.quic_attacks as usize);
    let mut busy: HashMap<Ipv4Addr, Vec<(u64, u64)>> = HashMap::new();
    let mut non_isolated_assigned: u64 = 0;
    for (vi, &(victim, provider)) in victims.iter().enumerate() {
        let version_wire = world
            .servers
            .lookup(victim)
            .map_or(quicsand_wire::Version::Draft29.to_wire(), |s| {
                s.version_wire
            });
        for _ in 0..counts[vi] {
            let duration = lognormal_by_median(
                &mut rng,
                config.quic_duration_median_secs,
                config.quic_duration_sigma,
            )
            .clamp(75.0, 21_600.0) as u64;
            let start = place_interval(&mut rng, &mut busy, victim, duration, horizon);
            let rate = lognormal_by_median(
                &mut rng,
                config.quic_global_pps_median / 512.0,
                config.quic_global_pps_sigma,
            )
            .clamp(0.25, 20.0);
            let class = if isolated_victims.contains(&victim) {
                PlannedClass::Isolated
            } else {
                // Deterministic quota (Bresenham-style) instead of
                // Bernoulli sampling, so small scenarios hit the
                // configured 51/40 split exactly.
                let p_concurrent =
                    config.concurrent_share / (config.concurrent_share + config.sequential_share);
                let k = non_isolated_assigned;
                non_isolated_assigned += 1;
                let before = (k as f64 * p_concurrent).floor() as u64;
                let after = ((k + 1) as f64 * p_concurrent).floor() as u64;
                if after > before {
                    PlannedClass::Concurrent
                } else {
                    PlannedClass::Sequential
                }
            };
            let pool_size = rng.gen_range(3..=24);
            let spoof_pool = (0..pool_size)
                .map(|_| world.telescope.sample(&mut rng))
                .collect();
            quic.push(PlannedQuicAttack {
                victim,
                provider,
                version_wire,
                start_secs: start,
                duration_secs: duration,
                visible_probe_rate: rate,
                class,
                spoof_pool,
            });
        }
    }
    quic.sort_by_key(|a| a.start_secs);

    // --- Companion common floods for the multi-vector structure. ---
    let mut common = Vec::new();
    let quic_busy = busy.clone();
    for attack in &quic {
        match attack.class {
            PlannedClass::Isolated => {}
            PlannedClass::Concurrent => {
                let (start, duration) = if rng.gen_bool(config.full_overlap_share) {
                    // Fully covering, but capped so it cannot swallow
                    // the victim's neighbouring QUIC floods.
                    let lead = rng.gen_range(10..300u64);
                    let trail = rng.gen_range(10..300u64);
                    (
                        attack.start_secs.saturating_sub(lead),
                        attack.duration_secs + lead + trail,
                    )
                } else {
                    // Partial overlap of the flood's head or tail. The
                    // companion is clamped to ±600 s around the QUIC
                    // flood so it can never bleed into the victim's
                    // neighbouring floods (same-victim separation is
                    // 660 s).
                    let overlap =
                        (attack.duration_secs as f64 * rng.gen_range(0.10f64..0.9)).max(2.0) as u64;
                    let duration = (lognormal_by_median(
                        &mut rng,
                        config.common_duration_median_secs,
                        config.common_duration_sigma,
                    ) as u64)
                        .clamp(120, attack.duration_secs + 600);
                    if rng.gen_bool(0.5) {
                        // Head overlap: common flood ends inside ours.
                        let end = attack.start_secs + overlap;
                        let start = end
                            .saturating_sub(duration)
                            .max(attack.start_secs.saturating_sub(600));
                        (start, end - start)
                    } else {
                        // Tail overlap: common flood starts inside ours.
                        let start = attack.start_secs + attack.duration_secs - overlap;
                        let end =
                            (start + duration).min(attack.start_secs + attack.duration_secs + 600);
                        (start, end - start)
                    }
                };
                common.push(PlannedCommonAttack {
                    victim: attack.victim,
                    start_secs: start,
                    duration_secs: duration,
                    visible_pps: common_rate(&mut rng, config),
                    kind: sample_kind(&mut rng),
                });
            }
            PlannedClass::Sequential => {
                // Disjoint flood at a heavy-tailed gap; retry placement
                // so it does not accidentally overlap any QUIC flood on
                // this victim.
                for _ in 0..20 {
                    let gap_secs = (lognormal_by_median(
                        &mut rng,
                        config.sequential_gap_median_hours * 3_600.0,
                        config.sequential_gap_sigma,
                    ) as u64)
                        .clamp(120, 28 * 86_400);
                    let duration = (lognormal_by_median(
                        &mut rng,
                        config.common_duration_median_secs,
                        config.common_duration_sigma,
                    ) as u64)
                        .clamp(120, 86_400);
                    let before = rng.gen_bool(0.5);
                    let start = if before {
                        attack.start_secs.saturating_sub(gap_secs + duration)
                    } else {
                        attack.start_secs + attack.duration_secs + gap_secs
                    };
                    if start + duration >= horizon {
                        continue;
                    }
                    let overlaps_quic = quic_busy
                        .get(&attack.victim)
                        .is_some_and(|ivs| overlaps_any(ivs, start, duration));
                    if overlaps_quic {
                        continue;
                    }
                    common.push(PlannedCommonAttack {
                        victim: attack.victim,
                        start_secs: start,
                        duration_secs: duration,
                        visible_pps: common_rate(&mut rng, config),
                        kind: sample_kind(&mut rng),
                    });
                    break;
                }
            }
        }
    }

    // --- Background common floods (Fig. 7 sample). ---
    let pool: std::collections::HashSet<Ipv4Addr> = victims.iter().map(|(a, _)| *a).collect();
    for _ in 0..config.common_attacks {
        // Victims: arbitrary servers across provider space, never a
        // QUIC flood victim (keeps the multi-vector classes clean).
        let victim = loop {
            let (addr, _) = world.sample_victim(&mut rng);
            // Perturb the host bits so background victims extend beyond
            // the registry while staying in content space.
            let candidate = Ipv4Addr::from(u32::from(addr) ^ rng.gen_range(0..1u32 << 10));
            if !pool.contains(&candidate) && !world.telescope.contains(candidate) {
                break candidate;
            }
        };
        let duration = (lognormal_by_median(
            &mut rng,
            config.common_duration_median_secs,
            config.common_duration_sigma,
        ) as u64)
            .clamp(120, 5 * 86_400);
        let start = rng.gen_range(0..horizon.saturating_sub(duration).max(1));
        common.push(PlannedCommonAttack {
            victim,
            start_secs: start,
            duration_secs: duration,
            visible_pps: common_rate(&mut rng, config),
            kind: sample_kind(&mut rng),
        });
    }
    common.sort_by_key(|a| a.start_secs);

    AttackPlan {
        quic,
        common,
        victims: victims.iter().map(|(a, _)| *a).collect(),
    }
}

fn common_rate(rng: &mut ChaCha12Rng, config: &ScenarioConfig) -> f64 {
    lognormal_by_median(
        rng,
        config.common_global_pps_median / 512.0,
        config.common_global_pps_sigma,
    )
    .clamp(0.7, 50.0)
}

fn sample_kind(rng: &mut ChaCha12Rng) -> CommonKind {
    match rng.gen_range(0..100) {
        0..=59 => CommonKind::TcpSynAck,
        60..=74 => CommonKind::TcpRst,
        75..=79 => CommonKind::TcpRstAck,
        80..=89 => CommonKind::IcmpEchoReply,
        _ => CommonKind::IcmpDestUnreachable,
    }
}

/// Places a `duration`-second interval for `victim` avoiding overlap
/// (plus separation margin) with the victim's existing intervals.
fn place_interval(
    rng: &mut ChaCha12Rng,
    busy: &mut HashMap<Ipv4Addr, Vec<(u64, u64)>>,
    victim: Ipv4Addr,
    duration: u64,
    horizon: u64,
) -> u64 {
    let intervals = busy.entry(victim).or_default();
    let max_start = horizon.saturating_sub(duration + 1).max(1);
    for _ in 0..200 {
        let start = rng.gen_range(0..max_start);
        let padded_start = start.saturating_sub(SAME_VICTIM_SEPARATION_SECS);
        let padded_duration = duration + 2 * SAME_VICTIM_SEPARATION_SECS;
        if !overlaps_any(intervals, padded_start, padded_duration) {
            intervals.push((start, duration));
            return start;
        }
    }
    // Pathologically busy victim: place anyway (sessions may merge;
    // analyses tolerate it).
    let start = rng.gen_range(0..max_start);
    intervals.push((start, duration));
    start
}

fn overlaps_any(intervals: &[(u64, u64)], start: u64, duration: u64) -> bool {
    let end = start + duration;
    intervals.iter().any(|&(s, d)| start < s + d && s < end)
}

/// Generates the telescope-visible packets of one QUIC flood.
pub fn generate_quic_attack(
    attack: &PlannedQuicAttack,
    attack_seed: u64,
    out: &mut Vec<PacketRecord>,
) {
    let mut rng = substream(attack_seed, "quic-flood");
    let mut builder = BackscatterBuilder::new(attack.provider, attack.version_wire, attack_seed);
    for sec in 0..attack.duration_secs {
        let probes = poisson(&mut rng, attack.visible_probe_rate);
        for _ in 0..probes {
            let base = Timestamp::from_secs(attack.start_secs + sec)
                + Duration::from_micros(rng.gen_range(0..1_000_000));
            let client = attack.spoof_pool[rng.gen_range(0..attack.spoof_pool.len())];
            let client_port: u16 = rng.gen_range(1_024..65_000);
            let response = builder.respond();
            let n = response.datagrams.len();
            for (i, datagram) in response.datagrams.into_iter().enumerate() {
                // Initial+HS and the trailing HS leave back-to-back;
                // the keep-alive fires after a short delay (§6).
                let delay = match i {
                    0 => Duration::ZERO,
                    1 => Duration::from_micros(rng.gen_range(300..2_000)),
                    _ => Duration::from_millis(rng.gen_range(200..900)),
                };
                let _ = n;
                out.push(PacketRecord::udp(
                    base + delay,
                    attack.victim,
                    client,
                    QUIC_PORT,
                    client_port,
                    datagram,
                ));
            }
        }
    }
}

/// Generates the telescope-visible packets of one TCP/ICMP flood.
pub fn generate_common_attack(
    attack: &PlannedCommonAttack,
    attack_seed: u64,
    telescope: &quicsand_net::Ipv4Prefix,
    out: &mut Vec<PacketRecord>,
) {
    let mut rng = substream(attack_seed, "common-flood");
    let service_port = *[80u16, 443, 22, 25, 3389]
        .choose(&mut rng)
        .expect("non-empty");
    for sec in 0..attack.duration_secs {
        let packets = poisson(&mut rng, attack.visible_pps);
        for _ in 0..packets {
            let ts = Timestamp::from_secs(attack.start_secs + sec)
                + Duration::from_micros(rng.gen_range(0..1_000_000));
            let dst = telescope.sample(&mut rng);
            let record = match attack.kind {
                CommonKind::TcpSynAck => PacketRecord::tcp(
                    ts,
                    attack.victim,
                    dst,
                    service_port,
                    rng.gen_range(1_024..65_000),
                    TcpFlags::SYN_ACK,
                ),
                CommonKind::TcpRst => PacketRecord::tcp(
                    ts,
                    attack.victim,
                    dst,
                    service_port,
                    rng.gen_range(1_024..65_000),
                    TcpFlags::RST,
                ),
                CommonKind::TcpRstAck => PacketRecord::tcp(
                    ts,
                    attack.victim,
                    dst,
                    service_port,
                    rng.gen_range(1_024..65_000),
                    TcpFlags::RST_ACK,
                ),
                CommonKind::IcmpEchoReply => {
                    PacketRecord::icmp(ts, attack.victim, dst, IcmpKind::EchoReply)
                }
                CommonKind::IcmpDestUnreachable => {
                    PacketRecord::icmp(ts, attack.victim, dst, IcmpKind::DestUnreachable)
                }
            };
            out.push(record);
        }
    }
}

/// Generates all planned attacks.
pub fn generate(
    world: &SyntheticInternet,
    config: &ScenarioConfig,
    plan: &AttackPlan,
    out: &mut Vec<PacketRecord>,
) {
    for (i, attack) in plan.quic.iter().enumerate() {
        generate_quic_attack(attack, config.seed ^ (0x9_0000 + i as u64), out);
    }
    for (i, attack) in plan.common.iter().enumerate() {
        generate_common_attack(
            attack,
            config.seed ^ (0xA_0000_0000 + i as u64),
            &world.telescope,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_intel::TopologyConfig;

    fn world() -> SyntheticInternet {
        SyntheticInternet::build(&TopologyConfig::default())
    }

    fn test_plan() -> (SyntheticInternet, ScenarioConfig, AttackPlan) {
        let w = world();
        let config = ScenarioConfig::test();
        let p = plan(&w, &config);
        (w, config, p)
    }

    #[test]
    fn plan_counts_match_config() {
        let (_, config, p) = test_plan();
        assert_eq!(p.quic.len() as u64, config.quic_attacks);
        assert_eq!(p.victims.len(), config.victim_pool);
        // Companions + background.
        assert!(p.common.len() as u64 >= config.common_attacks);
    }

    #[test]
    fn victim_attack_distribution_has_singles_and_tail() {
        let (_, config, p) = test_plan();
        let mut counts: HashMap<Ipv4Addr, u64> = HashMap::new();
        for a in &p.quic {
            *counts.entry(a.victim).or_default() += 1;
        }
        let singles = counts.values().filter(|&&c| c == 1).count();
        assert!(
            singles as f64 >= 0.4 * config.victim_pool as f64,
            "singles {singles} of {}",
            config.victim_pool
        );
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max >= 3, "heavy tail expected, max {max}");
    }

    #[test]
    fn same_victim_quic_attacks_are_separated() {
        let (_, _, p) = test_plan();
        let mut by_victim: HashMap<Ipv4Addr, Vec<(u64, u64)>> = HashMap::new();
        for a in &p.quic {
            by_victim
                .entry(a.victim)
                .or_default()
                .push((a.start_secs, a.duration_secs));
        }
        for intervals in by_victim.values() {
            let mut sorted = intervals.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                let gap = w[1].0.saturating_sub(w[0].0 + w[0].1);
                assert!(gap >= 300, "same-victim floods too close: gap {gap}s");
            }
        }
    }

    #[test]
    fn isolated_victims_have_no_common_attacks() {
        let (_, _, p) = test_plan();
        let isolated: std::collections::HashSet<_> = p
            .quic
            .iter()
            .filter(|a| a.class == PlannedClass::Isolated)
            .map(|a| a.victim)
            .collect();
        assert!(
            !isolated.is_empty(),
            "test preset should have isolated attacks"
        );
        for c in &p.common {
            assert!(
                !isolated.contains(&c.victim),
                "isolated victim {} received a common flood",
                c.victim
            );
        }
    }

    #[test]
    fn concurrent_attacks_overlap_their_companion() {
        let (_, _, p) = test_plan();
        for a in p
            .quic
            .iter()
            .filter(|a| a.class == PlannedClass::Concurrent)
        {
            let overlaps = p.common.iter().any(|c| {
                c.victim == a.victim
                    && a.start_secs < c.start_secs + c.duration_secs
                    && c.start_secs < a.start_secs + a.duration_secs
            });
            assert!(overlaps, "concurrent flood without overlapping companion");
        }
    }

    #[test]
    fn sequential_attacks_share_victim_but_not_time() {
        let (_, _, p) = test_plan();
        let mut checked = 0;
        for a in p
            .quic
            .iter()
            .filter(|a| a.class == PlannedClass::Sequential)
        {
            let same_victim: Vec<_> = p.common.iter().filter(|c| c.victim == a.victim).collect();
            if same_victim.is_empty() {
                continue; // placement can fail after retries near horizon
            }
            checked += 1;
            for c in same_victim {
                let disjoint = a.start_secs + a.duration_secs <= c.start_secs
                    || c.start_secs + c.duration_secs <= a.start_secs;
                assert!(disjoint, "sequential flood overlaps common flood");
            }
        }
        assert!(checked > 0, "no sequential attacks verified");
    }

    #[test]
    fn class_shares_approximate_config() {
        let w = world();
        let mut config = ScenarioConfig::test();
        config.quic_attacks = 800;
        config.victim_pool = 60;
        let p = plan(&w, &config);
        let total = p.quic.len() as f64;
        let share =
            |class: PlannedClass| p.quic.iter().filter(|a| a.class == class).count() as f64 / total;
        assert!((share(PlannedClass::Concurrent) - 0.51).abs() < 0.08);
        assert!((share(PlannedClass::Sequential) - 0.40).abs() < 0.08);
        assert!((share(PlannedClass::Isolated) - 0.09).abs() < 0.05);
    }

    #[test]
    fn quic_flood_packets_look_like_backscatter() {
        let (_, _, p) = test_plan();
        let attack = &p.quic[0];
        let mut out = Vec::new();
        generate_quic_attack(attack, 1, &mut out);
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.src, attack.victim);
            assert_eq!(r.transport.src_port(), Some(QUIC_PORT));
            assert!(attack.spoof_pool.contains(&r.dst));
            assert!(r.udp_payload().is_some());
        }
        // Dissectable as opaque server responses.
        let d = quicsand_dissect::dissect_udp_payload(out[0].udp_payload().unwrap()).unwrap();
        assert!(!d.messages[0].has_client_hello);
    }

    #[test]
    fn quic_flood_volume_tracks_rate() {
        let (_, _, p) = test_plan();
        let attack = &p.quic[0];
        let mut out = Vec::new();
        generate_quic_attack(attack, 1, &mut out);
        // Expected probes = rate × duration; datagrams ≈ 2.4 × probes.
        let expected = attack.visible_probe_rate * attack.duration_secs as f64 * 2.4;
        let got = out.len() as f64;
        assert!(
            got > expected * 0.6 && got < expected * 1.4,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn common_flood_packets_are_classic_backscatter() {
        let (w, _, p) = test_plan();
        let attack = p
            .common
            .iter()
            .find(|c| matches!(c.kind, CommonKind::TcpSynAck))
            .expect("plan contains SYN-ACK floods");
        let mut out = Vec::new();
        generate_common_attack(attack, 5, &w.telescope, &mut out);
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.src, attack.victim);
            assert!(w.telescope.contains(r.dst));
            match &r.transport {
                quicsand_net::Transport::Tcp { flags, .. } => {
                    assert!(flags.is_response());
                }
                other => panic!("unexpected transport {other:?}"),
            }
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let w = world();
        let config = ScenarioConfig::test();
        assert_eq!(plan(&w, &config), plan(&w, &config));
    }

    #[test]
    fn background_commons_avoid_quic_victims_and_telescope() {
        let (w, _, p) = test_plan();
        let pool: std::collections::HashSet<_> = p.victims.iter().collect();
        let quic_victim_commons = p.common.iter().filter(|c| pool.contains(&c.victim)).count();
        // Only companions may target pool victims; background must not.
        // Count companions: concurrent + sequential placements.
        let companions = p
            .quic
            .iter()
            .filter(|a| a.class != PlannedClass::Isolated)
            .count();
        assert!(quic_victim_commons <= companions);
        for c in &p.common {
            assert!(!w.telescope.contains(c.victim));
        }
    }
}
