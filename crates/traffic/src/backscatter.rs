//! QUIC server response synthesis: what a flood victim sends to a
//! spoofed client.
//!
//! §6 of the paper derives the backscatter signature from the server's
//! first flight: "QUIC sends multiple UDP packets in response to the
//! Initial packet: The first packet contains one Initial QUIC packet
//! carrying the Server Hello and one encrypted Handshake message
//! followed by a second datagram with a single Handshake message" —
//! plus keep-alive PINGs after a short delay (Table 1). The resulting
//! message mix is ~31 % Initial / ~57 % Handshake.
//!
//! Responses are sealed under keys derived from the *client's original
//! DCID* (as RFC 9001 mandates), which never appears in the response —
//! making server Initials opaque to the telescope, exactly the §6
//! "Initial without an unencrypted Client Hello" signature.

use bytes::Bytes;
use quicsand_intel::Provider;
use quicsand_net::rng::substream;
use quicsand_wire::crypto::{Direction, InitialSecrets};
use quicsand_wire::packet::{Packet, PacketPayload};
use quicsand_wire::tls::{cipher_suite, ServerHello};
use quicsand_wire::{ConnectionId, Frame, Version};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Per-provider response behaviour, driving the Fig. 9 differences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProviderProfile {
    /// Probability that a new probe reuses an SCID from the victim's
    /// recent pool instead of allocating a fresh one. Google allocates
    /// fresh contexts aggressively (more SCIDs despite fewer packets);
    /// mvfst pools them.
    pub scid_reuse_prob: f64,
    /// Probability of a trailing keep-alive datagram.
    pub keepalive_prob: f64,
    /// Certificate-chain bytes carried in the coalesced Handshake
    /// message.
    pub cert_chunk_len: usize,
    /// Bytes of the second (Handshake-only) datagram's CRYPTO payload.
    pub continuation_len: usize,
}

impl ProviderProfile {
    /// The profile for a provider.
    pub fn for_provider(provider: Provider) -> Self {
        match provider {
            Provider::Google => ProviderProfile {
                scid_reuse_prob: 0.0,
                keepalive_prob: 0.40,
                cert_chunk_len: 700,
                continuation_len: 400,
            },
            Provider::Facebook => ProviderProfile {
                scid_reuse_prob: 0.55,
                keepalive_prob: 0.40,
                cert_chunk_len: 900,
                continuation_len: 600,
            },
            _ => ProviderProfile {
                scid_reuse_prob: 0.25,
                keepalive_prob: 0.40,
                cert_chunk_len: 800,
                continuation_len: 500,
            },
        }
    }
}

/// The datagrams a victim emits in response to one spoofed Initial.
#[derive(Debug, Clone)]
pub struct ProbeResponse {
    /// UDP payloads, in emission order (2 or 3 datagrams).
    pub datagrams: Vec<Bytes>,
    /// The server-chosen SCID for this connection context.
    pub scid: ConnectionId,
}

/// Synthesizes victim responses for one victim server.
#[derive(Debug)]
pub struct BackscatterBuilder {
    version: Version,
    profile: ProviderProfile,
    rng: ChaCha12Rng,
    scid_counter: u64,
    scid_pool: Vec<ConnectionId>,
}

/// Maximum SCIDs kept in the reuse pool.
const SCID_POOL_CAP: usize = 64;

impl BackscatterBuilder {
    /// Creates a builder for a victim speaking `version_wire`, operated
    /// by `provider`. `victim_seed` individualizes SCID spaces across
    /// victims.
    pub fn new(provider: Provider, version_wire: u32, victim_seed: u64) -> Self {
        BackscatterBuilder {
            version: Version::from_wire(version_wire),
            profile: ProviderProfile::for_provider(provider),
            rng: substream(victim_seed, "backscatter"),
            scid_counter: victim_seed.wrapping_mul(0x1000) & 0xffff_ffff,
            scid_pool: Vec::new(),
        }
    }

    /// The victim's QUIC version.
    pub fn version(&self) -> Version {
        self.version
    }

    fn next_scid(&mut self) -> ConnectionId {
        if !self.scid_pool.is_empty() && self.rng.gen_bool(self.profile.scid_reuse_prob) {
            let i = self.rng.gen_range(0..self.scid_pool.len());
            return self.scid_pool[i];
        }
        self.scid_counter += 1;
        let scid = ConnectionId::from_u64(self.scid_counter);
        if self.scid_pool.len() < SCID_POOL_CAP {
            self.scid_pool.push(scid);
        } else {
            let i = self.rng.gen_range(0..SCID_POOL_CAP);
            self.scid_pool[i] = scid;
        }
        scid
    }

    /// Builds the response flight to one spoofed probe.
    pub fn respond(&mut self) -> ProbeResponse {
        let scid = self.next_scid();
        // Keys derive from the spoofed client's original DCID — chosen
        // by the attacker, invisible to the telescope.
        let original_dcid = ConnectionId::from_u64(self.rng.gen());
        let keys = InitialSecrets::derive(self.version, &original_dcid);
        let server_key = keys.key(Direction::ServerToClient);

        let server_hello = ServerHello {
            random: self.rng.gen(),
            cipher_suite: cipher_suite::AES_128_GCM_SHA256,
            key_share: Bytes::from(self.rng.gen::<[u8; 32]>().to_vec()),
        };

        // Datagram A: Initial (Server Hello) + coalesced Handshake
        // (start of the certificate chain).
        let initial = Packet::Initial {
            version: self.version,
            // The spoofed client offered a zero-length SCID, so the
            // server's DCID is empty — the §5.2 validity signature.
            dcid: ConnectionId::EMPTY,
            scid,
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(server_hello.encode()),
            }]),
        };
        let handshake_a = Packet::Handshake {
            version: self.version,
            dcid: ConnectionId::EMPTY,
            scid,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: opaque_crypto(&mut self.rng, self.profile.cert_chunk_len),
            }]),
        };
        let mut datagram_a = initial
            .encode(Some(server_key))
            .expect("initial encoding is infallible with a key");
        datagram_a.extend(
            handshake_a
                .encode(Some(server_key))
                .expect("handshake encoding is infallible with a key"),
        );

        // Datagram B: Handshake continuation.
        let handshake_b = Packet::Handshake {
            version: self.version,
            dcid: ConnectionId::EMPTY,
            scid,
            packet_number: 1,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: self.profile.cert_chunk_len as u64,
                data: opaque_crypto(&mut self.rng, self.profile.continuation_len),
            }]),
        };
        let datagram_b = handshake_b
            .encode(Some(server_key))
            .expect("handshake encoding is infallible with a key");

        let mut datagrams = vec![Bytes::from(datagram_a), Bytes::from(datagram_b)];

        // Optional keep-alive: a 1-RTT PING the server fires when the
        // (never-arriving) client stays silent.
        if self.rng.gen_bool(self.profile.keepalive_prob) {
            let keepalive = Packet::OneRtt {
                dcid: ConnectionId::EMPTY,
                spin: false,
                key_phase: false,
                packet_number: 2,
                payload: PacketPayload::new(vec![Frame::Ping]),
            };
            let wire = keepalive
                .encode(Some(server_key))
                .expect("one-rtt encoding is infallible with a key");
            datagrams.push(Bytes::from(wire));
        }

        ProbeResponse { datagrams, scid }
    }
}

fn opaque_crypto(rng: &mut ChaCha12Rng, len: usize) -> Bytes {
    // Opaque certificate bytes: content irrelevant, size matters.
    let mut data = vec![0u8; len];
    rng.fill(&mut data[..]);
    Bytes::from(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_dissect::{dissect_udp_payload, MessageKind};
    use std::collections::HashSet;

    fn builder(provider: Provider) -> BackscatterBuilder {
        let version = match provider {
            Provider::Facebook => Version::MvfstDraft27,
            _ => Version::Draft29,
        };
        BackscatterBuilder::new(provider, version.to_wire(), 42)
    }

    #[test]
    fn response_has_two_or_three_datagrams() {
        let mut b = builder(Provider::Google);
        for _ in 0..50 {
            let r = b.respond();
            assert!(r.datagrams.len() == 2 || r.datagrams.len() == 3);
        }
    }

    #[test]
    fn first_datagram_is_initial_plus_handshake_without_client_hello() {
        let mut b = builder(Provider::Google);
        let r = b.respond();
        let d = dissect_udp_payload(&r.datagrams[0]).unwrap();
        assert_eq!(d.messages.len(), 2);
        assert_eq!(d.messages[0].kind, MessageKind::Initial);
        assert!(!d.messages[0].has_client_hello, "must be opaque");
        assert_eq!(d.messages[1].kind, MessageKind::Handshake);
        assert!(d.all_dcids_empty(), "server replies to empty client SCID");
        assert_eq!(d.messages[0].scid, Some(r.scid));
    }

    #[test]
    fn second_datagram_is_single_handshake() {
        let mut b = builder(Provider::Facebook);
        let r = b.respond();
        let d = dissect_udp_payload(&r.datagrams[1]).unwrap();
        assert_eq!(d.messages.len(), 1);
        assert_eq!(d.messages[0].kind, MessageKind::Handshake);
        assert_eq!(d.messages[0].version, Some(Version::MvfstDraft27.to_wire()));
    }

    #[test]
    fn message_mix_approximates_paper_shares() {
        let mut b = builder(Provider::Google);
        let mut stats = quicsand_dissect::MessageMixStats::new();
        for _ in 0..2_000 {
            for datagram in b.respond().datagrams {
                stats.add(&dissect_udp_payload(&datagram).unwrap());
            }
        }
        let initial = stats.share(MessageKind::Initial);
        let handshake = stats.share(MessageKind::Handshake);
        // Paper §6: ~31 % Initial, ~57 % Handshake.
        assert!((0.25..=0.36).contains(&initial), "initial share {initial}");
        assert!(
            (0.50..=0.65).contains(&handshake),
            "handshake share {handshake}"
        );
        assert!(!stats.any_retry(), "victims never sent RETRY in the wild");
    }

    #[test]
    fn google_allocates_more_scids_than_facebook() {
        let mut google = builder(Provider::Google);
        let mut facebook = builder(Provider::Facebook);
        let n = 500;
        let google_scids: HashSet<_> = (0..n).map(|_| google.respond().scid).collect();
        let fb_scids: HashSet<_> = (0..n).map(|_| facebook.respond().scid).collect();
        assert_eq!(google_scids.len(), n, "google: fresh SCID per probe");
        assert!(
            fb_scids.len() < n * 3 / 4,
            "facebook pools SCIDs: {} of {n}",
            fb_scids.len()
        );
    }

    #[test]
    fn amplification_stays_below_rfc_limit() {
        // A server must not send more than 3× the client's bytes before
        // validation (RFC 9000 §8.1); clients pad Initials to ≥1200.
        let mut b = builder(Provider::Facebook);
        for _ in 0..100 {
            let total: usize = b.respond().datagrams.iter().map(|d| d.len()).sum();
            assert!(
                total <= 3 * quicsand_wire::MIN_INITIAL_SIZE,
                "flight of {total} bytes exceeds 3x1200"
            );
        }
    }

    #[test]
    fn versions_propagate_to_wire() {
        let mut b = BackscatterBuilder::new(Provider::Google, Version::V1.to_wire(), 7);
        assert_eq!(b.version(), Version::V1);
        let r = b.respond();
        let d = dissect_udp_payload(&r.datagrams[0]).unwrap();
        assert_eq!(d.version(), Some(Version::V1.to_wire()));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = BackscatterBuilder::new(Provider::Google, Version::Draft29.to_wire(), 9);
        let mut b = BackscatterBuilder::new(Provider::Google, Version::Draft29.to_wire(), 9);
        for _ in 0..10 {
            let ra = a.respond();
            let rb = b.respond();
            assert_eq!(ra.datagrams, rb.datagrams);
            assert_eq!(ra.scid, rb.scid);
        }
    }
}
