//! qlog JSON-SEQ export (RFC 7464 framing, qlog 0.4 shape).
//!
//! One file is one run: a header record describing the trace (with one
//! vantage entry per ingest feed), then one record per event —
//! `{"time", "name", "data"}` with millisecond times relative to the
//! simulation epoch. Every record is framed as
//! `0x1E <json> 0x0A` per RFC 7464, which is what qlog's `JSON-SEQ`
//! format and its streaming readers expect: a crashed run still leaves
//! every completed record parseable.

use crate::{Event, EventMeta};
use quicsand_net::Timestamp;
use serde::Value;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// RFC 7464 record separator.
pub const RECORD_SEPARATOR: u8 = 0x1E;

/// The qlog version this writer emits.
pub const QLOG_VERSION: &str = "0.4";

/// A shared in-memory sink for tests and golden snapshots.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// The bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Serializes pipeline events as qlog JSON-SEQ.
///
/// Construction writes the header record immediately, so a run that
/// emits zero events still leaves a valid (header-only) qlog file —
/// and an unwritable path fails at construction, before any ingest
/// work happens. I/O errors during the run are latched and surfaced by
/// [`QlogWriter::finish`], so the hot emission path never panics.
pub struct QlogWriter {
    out: Box<dyn Write + Send>,
    events_written: u64,
    bytes_written: u64,
    error: Option<String>,
}

impl std::fmt::Debug for QlogWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QlogWriter")
            .field("events_written", &self.events_written)
            .field("bytes_written", &self.bytes_written)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl QlogWriter {
    /// Wraps an arbitrary sink and writes the header record. `vantage`
    /// carries one label per ingest feed (file paths for captures).
    pub fn new(
        out: Box<dyn Write + Send>,
        title: &str,
        vantage: &[String],
    ) -> Result<Self, String> {
        let mut writer = QlogWriter {
            out,
            events_written: 0,
            bytes_written: 0,
            error: None,
        };
        let header = header_value(title, vantage);
        writer.write_record(&header)?;
        Ok(writer)
    }

    /// Creates (truncates) `path` and writes the header record —
    /// failing here, up front, if the path is unwritable.
    pub fn create(path: &str, title: &str, vantage: &[String]) -> Result<Self, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("events-out {path}: cannot create qlog file: {e}"))?;
        Self::new(Box::new(std::io::BufWriter::new(file)), title, vantage)
    }

    /// A writer over a shared in-memory buffer (tests, goldens).
    pub fn to_buffer(title: &str, vantage: &[String]) -> Result<(Self, SharedBuffer), String> {
        let buffer = SharedBuffer::default();
        let writer = Self::new(Box::new(buffer.clone()), title, vantage)?;
        Ok((writer, buffer))
    }

    fn write_record(&mut self, value: &Value) -> Result<(), String> {
        let json = serde_json::to_string(value).map_err(|e| format!("qlog encode: {e}"))?;
        let write = |out: &mut dyn Write| -> std::io::Result<()> {
            out.write_all(&[RECORD_SEPARATOR])?;
            out.write_all(json.as_bytes())?;
            out.write_all(b"\n")
        };
        write(self.out.as_mut()).map_err(|e| format!("qlog write: {e}"))?;
        self.bytes_written += json.len() as u64 + 2;
        Ok(())
    }

    /// Appends one event record. Errors are latched for
    /// [`QlogWriter::finish`] rather than propagated per event.
    pub fn sink(&mut self, meta: &EventMeta, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut fields = vec![
            (
                "time".to_string(),
                Value::F64(event.at().as_micros() as f64 / 1_000.0),
            ),
            ("name".to_string(), Value::Str(event.name().to_string())),
            ("data".to_string(), event.data_value()),
        ];
        if let Some(index) = meta.record_index {
            fields.push(("record_index".to_string(), Value::U64(index)));
        }
        match self.write_record(&Value::Map(fields)) {
            Ok(()) => self.events_written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Appends one record outside the typed event taxonomy — the
    /// forensic slice writer uses this for its `quicsand:slice_*`
    /// records. The name must stay in the `quicsand:` namespace for the
    /// file to validate. Errors are latched exactly like
    /// [`QlogWriter::sink`].
    pub fn raw_record(&mut self, at: Timestamp, name: &str, data: Value) {
        if self.error.is_some() {
            return;
        }
        let fields = vec![
            (
                "time".to_string(),
                Value::F64(at.as_micros() as f64 / 1_000.0),
            ),
            ("name".to_string(), Value::Str(name.to_string())),
            ("data".to_string(), data),
        ];
        match self.write_record(&Value::Map(fields)) {
            Ok(()) => self.events_written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Events written so far (header excluded).
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Bytes written so far (framing included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flushes and returns `(events, bytes)` written, or the first
    /// latched I/O error.
    pub fn finish(mut self) -> Result<(u64, u64), String> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.out.flush().map_err(|e| format!("qlog flush: {e}"))?;
        Ok((self.events_written, self.bytes_written))
    }
}

/// The qlog header record: version, framing format, and one trace with
/// per-feed vantage metadata.
fn header_value(title: &str, vantage: &[String]) -> Value {
    let vantage_point = Value::Map(vec![
        (
            "name".to_string(),
            Value::Str("quicsand-telescope".to_string()),
        ),
        ("type".to_string(), Value::Str("network".to_string())),
        (
            "feeds".to_string(),
            Value::Seq(vantage.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let common_fields = Value::Map(vec![
        (
            "time_format".to_string(),
            Value::Str("relative".to_string()),
        ),
        ("reference_time".to_string(), Value::F64(0.0)),
    ]);
    let trace = Value::Map(vec![
        ("vantage_point".to_string(), vantage_point),
        ("common_fields".to_string(), common_fields),
    ]);
    Value::Map(vec![
        (
            "qlog_version".to_string(),
            Value::Str(QLOG_VERSION.to_string()),
        ),
        (
            "qlog_format".to_string(),
            Value::Str("JSON-SEQ".to_string()),
        ),
        ("title".to_string(), Value::Str(title.to_string())),
        ("trace".to_string(), trace),
    ])
}

/// Parses an RFC 7464 JSON-SEQ byte stream into its records.
///
/// Strict on framing: the stream must start with a record separator,
/// every record must end with a line feed, and every record body must
/// be one valid JSON value.
pub fn parse_json_seq(bytes: &[u8]) -> Result<Vec<Value>, String> {
    if bytes.is_empty() {
        return Err("empty stream (a valid qlog file has at least the header record)".into());
    }
    if bytes[0] != RECORD_SEPARATOR {
        return Err(format!(
            "stream does not start with the RFC 7464 record separator (0x1E), got 0x{:02X}",
            bytes[0]
        ));
    }
    let mut records = Vec::new();
    for (i, chunk) in bytes.split(|&b| b == RECORD_SEPARATOR).enumerate() {
        if i == 0 {
            // The split's leading empty piece before the first separator.
            if !chunk.is_empty() {
                return Err("bytes before the first record separator".into());
            }
            continue;
        }
        let Some(body) = chunk.strip_suffix(b"\n") else {
            return Err(format!("record {i} is not terminated by a line feed"));
        };
        let text =
            std::str::from_utf8(body).map_err(|e| format!("record {i} is not valid UTF-8: {e}"))?;
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("record {i} is not valid JSON: {e}"))?;
        records.push(value);
    }
    Ok(records)
}

/// Summary of a validated qlog JSON-SEQ file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QlogSummary {
    /// Total records including the header.
    pub records: usize,
    /// Event records (header excluded).
    pub events: usize,
}

/// Validates framing and qlog shape: RFC 7464 records, a well-formed
/// header first, and `time` + `name` members on every event record.
pub fn validate_qlog(bytes: &[u8]) -> Result<QlogSummary, String> {
    let records = parse_json_seq(bytes)?;
    let Some(header) = records.first() else {
        return Err("no header record".into());
    };
    match header.get("qlog_version") {
        Some(Value::Str(v)) if v == QLOG_VERSION => {}
        other => {
            return Err(format!(
                "header qlog_version is not {QLOG_VERSION:?}: {other:?}"
            ))
        }
    }
    match header.get("qlog_format") {
        Some(Value::Str(v)) if v == "JSON-SEQ" => {}
        other => return Err(format!("header qlog_format is not \"JSON-SEQ\": {other:?}")),
    }
    if header
        .get("trace")
        .and_then(|t| t.get("vantage_point"))
        .is_none()
    {
        return Err("header trace carries no vantage_point".into());
    }
    for (i, record) in records.iter().enumerate().skip(1) {
        if !matches!(record.get("time"), Some(Value::F64(_) | Value::U64(_))) {
            return Err(format!("event record {i} has no numeric time"));
        }
        match record.get("name") {
            Some(Value::Str(name)) if name.starts_with("quicsand:") => {}
            other => {
                return Err(format!(
                    "event record {i} has no quicsand-namespaced name: {other:?}"
                ))
            }
        }
    }
    Ok(QlogSummary {
        records: records.len(),
        events: records.len() - 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SessionOpened, Subscriber, WireRejected};
    use quicsand_net::Timestamp;
    use std::net::Ipv4Addr;

    fn feeds() -> Vec<String> {
        vec!["a.qscp".to_string(), "b.qscp".to_string()]
    }

    #[test]
    fn zero_event_run_yields_a_valid_header_only_file() {
        let (writer, buffer) = QlogWriter::to_buffer("empty run", &feeds()).expect("writer");
        let (events, bytes) = writer.finish().expect("finish");
        assert_eq!(events, 0);
        let contents = buffer.contents();
        assert_eq!(bytes as usize, contents.len());
        let summary = validate_qlog(&contents).expect("valid");
        assert_eq!(
            summary,
            QlogSummary {
                records: 1,
                events: 0
            }
        );
    }

    #[test]
    fn events_round_trip_through_framing() {
        let (mut writer, buffer) = QlogWriter::to_buffer("run", &feeds()).expect("writer");
        writer.on_session_opened(
            &EventMeta::record(5),
            &SessionOpened {
                at: Timestamp::from_secs(3),
                src: Ipv4Addr::new(10, 0, 0, 1),
                channel: "quic".into(),
            },
        );
        writer.on_wire_rejected(
            &EventMeta::record(6),
            &WireRejected {
                at: Timestamp::from_secs(4),
                reason: "truncated".into(),
            },
        );
        let (events, _) = writer.finish().expect("finish");
        assert_eq!(events, 2);

        let contents = buffer.contents();
        let summary = validate_qlog(&contents).expect("valid");
        assert_eq!(summary.events, 2);
        let records = parse_json_seq(&contents).expect("parse");
        assert_eq!(
            records[1].get("name"),
            Some(&Value::Str("quicsand:session_opened".to_string()))
        );
        assert_eq!(records[1].get("record_index"), Some(&Value::U64(5)));
        let data = records[1].get("data").expect("data");
        assert_eq!(data.get("channel"), Some(&Value::Str("quic".to_string())));
        // Header carries the per-feed vantage labels.
        let feeds_value = records[0]
            .get("trace")
            .and_then(|t| t.get("vantage_point"))
            .and_then(|v| v.get("feeds"))
            .expect("feeds");
        assert_eq!(feeds_value.as_seq().map(<[Value]>::len), Some(2));
    }

    #[test]
    fn framing_violations_are_rejected() {
        assert!(parse_json_seq(b"").is_err());
        assert!(parse_json_seq(b"{}\n").is_err(), "missing separator");
        assert!(
            parse_json_seq(&[RECORD_SEPARATOR, b'{', b'}']).is_err(),
            "missing trailing LF"
        );
        assert!(
            parse_json_seq(&[RECORD_SEPARATOR, b'n', b'o', b'\n']).is_err(),
            "invalid JSON body"
        );
        let mut good = vec![RECORD_SEPARATOR];
        good.extend_from_slice(b"{\"a\":1}\n");
        assert_eq!(parse_json_seq(&good).expect("parses").len(), 1);
        // Valid JSON-SEQ but not qlog: no header members.
        assert!(validate_qlog(&good).is_err());
    }
}
