//! quicsand-events: the typed event layer of the pipeline.
//!
//! Metrics answer "how much"; this crate answers "what happened, in
//! order". Dissect rejections, Retry / Version Negotiation sightings,
//! sessionization transitions and the live alert lifecycle are all
//! surfaced as typed event structs delivered to a [`Subscriber`].
//!
//! The design follows s2n-quic's `s2n-events` codegen layer: a single
//! [`events!`] definition derives the event structs, the [`Event`]
//! enum, and a `Subscriber` trait whose methods all default to no-ops.
//! Emission sites are generic over `S: Subscriber` and guard event
//! construction behind [`Subscriber::enabled`]; [`NoopSubscriber`]
//! returns a compile-time `false` there, so every `*_with` entry point
//! monomorphizes down to exactly the subscriber-free machine code — an
//! absent subscriber costs nothing, which is why the bench gates are
//! required not to move.
//!
//! [`qlog::QlogWriter`] is the shipping subscriber: it serializes the
//! stream as qlog 0.4 JSON-SEQ (RFC 7464 framing) with one trace per
//! run and per-feed vantage metadata, the format the QUIC ecosystem's
//! qlog tooling already reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod qlog;

use quicsand_net::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Per-emission context that is not part of the event payload itself.
///
/// `record_index` is the absolute index of the triggering record in the
/// offered stream (across chunks and shards), when the event is tied to
/// a single record; lifecycle events that summarize many records carry
/// `None`. The index is what makes sharded emission deterministic: each
/// shard collects `(meta, event)` pairs and the merge orders them by
/// record index, so the stream is identical at any shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMeta {
    /// Absolute index of the triggering record in the offered stream.
    pub record_index: Option<u64>,
}

impl EventMeta {
    /// Meta for an event triggered by record `index`.
    pub fn record(index: u64) -> Self {
        EventMeta {
            record_index: Some(index),
        }
    }

    /// Meta for a lifecycle event not tied to a single record.
    pub fn lifecycle() -> Self {
        EventMeta { record_index: None }
    }
}

/// Defines the event taxonomy: structs, the [`Event`] enum, the
/// [`Subscriber`] trait (one default no-op method per event), and the
/// built-in subscribers ([`NoopSubscriber`], [`VecSubscriber`], the
/// qlog writer impl).
///
/// Every event struct carries an `at: Timestamp` field (its event
/// time); the macro relies on that to generate [`Event::at`].
macro_rules! events {
    ($(
        $(#[$doc:meta])*
        $qname:literal => $name:ident / $method:ident {
            $( $(#[$fdoc:meta])* $field:ident : $ty:ty ),* $(,)?
        }
    )*) => {
        $(
            $(#[$doc])*
            #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
            pub struct $name {
                /// Event time.
                pub at: Timestamp,
                $( $(#[$fdoc])* pub $field : $ty, )*
            }
        )*

        /// Every event kind, as one enum — what [`VecSubscriber`]
        /// collects and what sharded emission merges before re-dispatch.
        #[derive(Debug, Clone, PartialEq)]
        #[allow(missing_docs)]
        pub enum Event {
            $( $name($name), )*
        }

        impl Event {
            /// The qlog event name (`quicsand:` namespace).
            pub fn name(&self) -> &'static str {
                match self {
                    $( Event::$name(_) => $qname, )*
                }
            }

            /// The event time.
            pub fn at(&self) -> Timestamp {
                match self {
                    $( Event::$name(e) => e.at, )*
                }
            }

            /// The event payload as a serde value tree (the qlog
            /// `data` member).
            pub fn data_value(&self) -> serde::Value {
                match self {
                    $( Event::$name(e) => serde::to_value(e)
                        .expect("event structs always serialize"), )*
                }
            }

            /// Re-dispatches this event to `subscriber`'s typed method
            /// — used when replaying a merged per-shard collection into
            /// the run's real subscriber.
            pub fn dispatch<S: Subscriber + ?Sized>(&self, meta: &EventMeta, subscriber: &mut S) {
                match self {
                    $( Event::$name(e) => subscriber.$method(meta, e), )*
                }
            }
        }

        /// Receives typed pipeline events.
        ///
        /// Every method defaults to a no-op, so implementors override
        /// only what they care about. Emission sites must guard event
        /// construction behind [`Subscriber::enabled`]; with
        /// [`NoopSubscriber`] that guard is a compile-time `false` and
        /// the whole emission path folds away.
        pub trait Subscriber {
            /// Whether this subscriber wants events at all. Emission
            /// sites skip event construction when this is `false`.
            #[inline]
            fn enabled(&self) -> bool {
                true
            }

            $(
                /// Typed delivery hook (default: no-op).
                #[inline]
                fn $method(&mut self, meta: &EventMeta, event: &$name) {
                    let _ = (meta, event);
                }
            )*
        }

        impl Subscriber for VecSubscriber {
            $(
                #[inline]
                fn $method(&mut self, meta: &EventMeta, event: &$name) {
                    self.events.push((*meta, Event::$name(event.clone())));
                }
            )*
        }

        impl Subscriber for qlog::QlogWriter {
            $(
                fn $method(&mut self, meta: &EventMeta, event: &$name) {
                    self.sink(meta, &Event::$name(event.clone()));
                }
            )*
        }

        /// `None` behaves like [`NoopSubscriber`] (disabled, so emission
        /// sites skip event construction); `Some(s)` delegates to `s`.
        /// This is the toggle the CLI uses for optional `--events-out`.
        impl<S: Subscriber> Subscriber for Option<S> {
            #[inline]
            fn enabled(&self) -> bool {
                self.as_ref().is_some_and(Subscriber::enabled)
            }

            $(
                #[inline]
                fn $method(&mut self, meta: &EventMeta, event: &$name) {
                    if let Some(inner) = self {
                        inner.$method(meta, event);
                    }
                }
            )*
        }
    };
}

events! {
    /// A record the ingest guard or the QUIC dissector rejected; the
    /// reason is the `IngestError` quarantine label.
    "quicsand:wire_rejected" => WireRejected / on_wire_rejected {
        /// Quarantine-taxonomy label (e.g. `truncated`, `duplicate`).
        reason: String,
    }

    /// A dissected QUIC Retry — the paper's unused defence (§6); any
    /// sighting on a telescope is noteworthy.
    "quicsand:retry_observed" => RetryObserved / on_retry_observed {
        /// Packet source.
        src: Ipv4Addr,
        /// Packet destination (telescope address).
        dst: Ipv4Addr,
    }

    /// A dissected QUIC Version Negotiation packet (scan responses and
    /// version-mix probes).
    "quicsand:version_negotiation" => VersionNegotiationObserved / on_version_negotiation {
        /// Packet source.
        src: Ipv4Addr,
        /// Packet destination (telescope address).
        dst: Ipv4Addr,
    }

    /// A sessionizer opened a fresh per-source session.
    "quicsand:session_opened" => SessionOpened / on_session_opened {
        /// Session source address.
        src: Ipv4Addr,
        /// Which channel the session lives on (`quic` / `tcp_icmp`).
        channel: String,
    }

    /// A late packet widened an open session's bounds backwards —
    /// admissible reordering, surfaced because it moves session start.
    "quicsand:session_widened" => SessionWidened / on_session_widened {
        /// Session source address.
        src: Ipv4Addr,
        /// Which channel the session lives on.
        channel: String,
        /// How far the session start moved backwards.
        lead: Duration,
    }

    /// A session closed (gap, watermark expiry, or end of stream).
    "quicsand:session_closed" => SessionClosed / on_session_closed {
        /// Session source address.
        src: Ipv4Addr,
        /// Which channel the session lived on.
        channel: String,
        /// First packet time.
        start: Timestamp,
        /// Packets in the session.
        packet_count: u64,
        /// Whether the watermark expired it (vs. gap / end of stream).
        expired: bool,
    }

    /// A CID-keyed migration link re-joined two address-split session
    /// halves: the same connection continued from a new source address
    /// within the session timeout (Buchet-style migration).
    "quicsand:session_migrated" => SessionMigrated / on_session_migrated {
        /// Source address before the migration (the canonical one the
        /// merged session keeps).
        from: Ipv4Addr,
        /// Source address after the migration.
        to: Ipv4Addr,
        /// Which channel the session lives on.
        channel: String,
        /// Connection-ID key both halves carried.
        cid_key: u64,
        /// Silence between the halves (zero when overlapping).
        gap: Duration,
    }

    /// A live alert crossed the detection threshold (lifecycle: Open).
    "quicsand:alert_opened" => AlertOpened / on_alert_opened {
        /// Flood victim.
        victim: Ipv4Addr,
        /// Attack protocol label (`quic` / `tcp_icmp`).
        protocol: String,
    }

    /// A live alert crossed the escalation tier.
    "quicsand:alert_escalated" => AlertEscalated / on_alert_escalated {
        /// Flood victim.
        victim: Ipv4Addr,
        /// Attack protocol label.
        protocol: String,
    }

    /// A live alert closed, with its attack measures and (for QUIC)
    /// the multi-vector verdict at close time.
    "quicsand:alert_closed" => AlertClosed / on_alert_closed {
        /// Flood victim.
        victim: Ipv4Addr,
        /// Attack protocol label.
        protocol: String,
        /// Attack start.
        start: Timestamp,
        /// Packets attributed to the attack.
        packet_count: u64,
        /// Peak packets/s over 1-minute slots.
        max_pps: f64,
        /// Multi-vector verdict (`concurrent` / `sequential` /
        /// `isolated`), QUIC channel only.
        class: Option<String>,
        /// Overlap share behind a `concurrent` verdict.
        overlap_share: Option<f64>,
        /// Gap (seconds) behind a `sequential` verdict.
        gap_secs: Option<f64>,
        /// Whether memory-pressure eviction forced the close.
        evicted: bool,
    }

    /// A later TCP/ICMP flood upgraded a closed QUIC alert's verdict.
    "quicsand:alert_reclassified" => AlertReclassified / on_alert_reclassified {
        /// Flood victim.
        victim: Ipv4Addr,
        /// Attack protocol label.
        protocol: String,
        /// The upgraded verdict.
        class: Option<String>,
        /// Overlap share behind the new verdict.
        overlap_share: Option<f64>,
        /// Gap (seconds) behind the new verdict.
        gap_secs: Option<f64>,
    }
}

/// The zero-cost subscriber: [`Subscriber::enabled`] is a compile-time
/// `false`, so generic emission paths instantiated with it carry no
/// event code at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Collects every event into a vector — the per-shard collection
/// buffer (merged by record index afterwards) and the test harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSubscriber {
    /// Collected `(meta, event)` pairs, in emission order.
    pub events: Vec<(EventMeta, Event)>,
}

impl VecSubscriber {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stable-sorts the collection by record index (record-tied events
    /// first, in stream order; lifecycle events after, in emission
    /// order) — the canonical order for cross-shard comparison.
    pub fn sort_by_record_index(&mut self) {
        self.events
            .sort_by_key(|(meta, _)| meta.record_index.unwrap_or(u64::MAX));
    }

    /// Drains the collection, re-dispatching every event into
    /// `subscriber` — how merged per-shard buffers reach the run's
    /// real subscriber.
    pub fn replay_into<S: Subscriber>(&mut self, subscriber: &mut S) {
        for (meta, event) in self.events.drain(..) {
            event.dispatch(&meta, subscriber);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> Event {
        Event::SessionOpened(SessionOpened {
            at: Timestamp::from_secs(12),
            src: Ipv4Addr::new(198, 51, 100, 7),
            channel: "quic".into(),
        })
    }

    #[test]
    fn noop_subscriber_is_disabled() {
        assert!(!NoopSubscriber.enabled());
        assert!(VecSubscriber::new().enabled());
    }

    #[test]
    fn vec_subscriber_collects_in_order_and_replays() {
        let mut vec = VecSubscriber::new();
        vec.on_wire_rejected(
            &EventMeta::record(3),
            &WireRejected {
                at: Timestamp::from_secs(1),
                reason: "truncated".into(),
            },
        );
        vec.on_session_opened(
            &EventMeta::record(1),
            &SessionOpened {
                at: Timestamp::from_secs(2),
                src: Ipv4Addr::new(10, 0, 0, 1),
                channel: "quic".into(),
            },
        );
        vec.on_alert_opened(
            &EventMeta::lifecycle(),
            &AlertOpened {
                at: Timestamp::from_secs(3),
                victim: Ipv4Addr::new(10, 0, 0, 2),
                protocol: "quic".into(),
            },
        );
        assert_eq!(vec.events.len(), 3);
        vec.sort_by_record_index();
        let names: Vec<&str> = vec.events.iter().map(|(_, e)| e.name()).collect();
        assert_eq!(
            names,
            [
                "quicsand:session_opened",
                "quicsand:wire_rejected",
                "quicsand:alert_opened"
            ]
        );

        let mut sink = VecSubscriber::new();
        let want = vec.clone();
        vec.replay_into(&mut sink);
        assert!(vec.events.is_empty());
        assert_eq!(sink, want);
    }

    #[test]
    fn event_accessors() {
        let event = sample_event();
        assert_eq!(event.name(), "quicsand:session_opened");
        assert_eq!(event.at(), Timestamp::from_secs(12));
        let data = event.data_value();
        assert!(data.get("src").is_some());
        assert!(data.get("channel").is_some());
    }

    #[test]
    fn dispatch_routes_to_the_typed_method() {
        let mut sink = VecSubscriber::new();
        let event = sample_event();
        event.dispatch(&EventMeta::record(9), &mut sink);
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.events[0].0, EventMeta::record(9));
        assert_eq!(sink.events[0].1, event);
    }
}
