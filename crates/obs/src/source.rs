//! Per-source metric bundles for multi-feed ingestion.
//!
//! Every feed in a source set gets a labeled family
//! (`quicsand_source_*{source="i"}`): delivered-record / reconnect /
//! drop counters plus queue depth and peak gauges, and the set itself
//! exports a `quicsand_sources` count. All of these are
//! [`Stability::Volatile`]: how a trace is split across feeds is a
//! property of the deployment, not of the logical trace, so the
//! *stable* exposition stays byte-identical at any source count — the
//! invariant the multi-source equivalence suite asserts.
//!
//! The bundle follows the workspace's delta-sync convention: the owner
//! keeps plain [`SourceSample`] readings, publishes differences at sync
//! barriers via [`SourceSetMetrics::add_delta`], and can prove
//! counter/stats agreement at rest with [`SourceSetMetrics::verify`].

use crate::registry::{Counter, Gauge, MetricsRegistry, Stability};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// A point-in-time reading of one feed's counters (plain data; the
/// ingestion layer converts its own stats type into this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSample {
    /// Records delivered to the consumer (absolute stream position).
    pub delivered: u64,
    /// Record batches pushed through the feed's bounded queue.
    pub batches: u64,
    /// Reconnect attempts after failures.
    pub reconnects: u64,
    /// Failed sessions skipped over (corrupt record or open error).
    pub drops: u64,
    /// Records currently buffered in the feed's queue.
    pub queue_depth: u64,
    /// Highest queue occupancy observed.
    pub queue_peak: u64,
}

/// Interned `source="<index>"` label values (metric labels are
/// `&'static str`). Small indices come from a static table; larger ones
/// are leaked once and cached, so repeated registration never re-leaks.
pub fn source_label(index: usize) -> &'static str {
    static SMALL: [&str; 16] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    if let Some(label) = SMALL.get(index) {
        return label;
    }
    static EXTRA: OnceLock<Mutex<BTreeMap<usize, &'static str>>> = OnceLock::new();
    let mut cache = EXTRA
        .get_or_init(Default::default)
        .lock()
        .expect("label cache lock");
    cache
        .entry(index)
        .or_insert_with(|| Box::leak(index.to_string().into_boxed_str()))
}

/// One feed's labeled handles.
#[derive(Debug, Clone)]
pub struct SourceFeedMetrics {
    /// `quicsand_source_records_total{source=...}` ==
    /// [`SourceSample::delivered`].
    pub records: Counter,
    /// `quicsand_source_batches_total{source=...}` — batched hand-offs
    /// through the queue; `records_total / batches_total` is the
    /// realized amortization factor.
    pub batches: Counter,
    /// `quicsand_source_reconnects_total{source=...}`.
    pub reconnects: Counter,
    /// `quicsand_source_drops_total{source=...}`.
    pub drops: Counter,
    /// `quicsand_source_queue_depth{source=...}` — buffered records at
    /// the last sync.
    pub queue_depth: Gauge,
    /// `quicsand_source_queue_peak{source=...}` — high-water queue
    /// occupancy.
    pub queue_peak: Gauge,
}

impl SourceFeedMetrics {
    fn register(registry: &MetricsRegistry, index: usize) -> Self {
        let labels: &[(&'static str, &'static str)] = &[("source", source_label(index))];
        SourceFeedMetrics {
            records: registry.counter_with(
                "quicsand_source_records_total",
                "Records delivered by this feed into the merged stream",
                Stability::Volatile,
                labels,
            ),
            batches: registry.counter_with(
                "quicsand_source_batches_total",
                "Record batches pushed through the feed's bounded queue",
                Stability::Volatile,
                labels,
            ),
            reconnects: registry.counter_with(
                "quicsand_source_reconnects_total",
                "Reconnect attempts after a feed failure",
                Stability::Volatile,
                labels,
            ),
            drops: registry.counter_with(
                "quicsand_source_drops_total",
                "Failed feed sessions skipped over (corrupt record or open error)",
                Stability::Volatile,
                labels,
            ),
            queue_depth: registry.gauge_with(
                "quicsand_source_queue_depth",
                "Records buffered in the feed's bounded queue at the last sync",
                Stability::Volatile,
                labels,
            ),
            queue_peak: registry.gauge_with(
                "quicsand_source_queue_peak",
                "High-water occupancy of the feed's bounded queue",
                Stability::Volatile,
                labels,
            ),
        }
    }
}

/// The whole set's bundle: one [`SourceFeedMetrics`] per feed plus the
/// feed-count gauge.
#[derive(Debug, Clone)]
pub struct SourceSetMetrics {
    /// Per-feed handles, indexed like the source set.
    pub feeds: Vec<SourceFeedMetrics>,
    /// `quicsand_sources` — feeds in the set.
    pub sources: Gauge,
}

impl SourceSetMetrics {
    /// Registers the per-source families for `count` feeds.
    pub fn register(registry: &MetricsRegistry, count: usize) -> Self {
        let sources = registry.gauge(
            "quicsand_sources",
            "Feeds in the ingestion source set",
            Stability::Volatile,
        );
        sources.set(count as u64);
        SourceSetMetrics {
            feeds: (0..count)
                .map(|index| SourceFeedMetrics::register(registry, index))
                .collect(),
            sources,
        }
    }

    /// Publishes the per-feed deltas between two sample readings
    /// (counters advance by the difference, gauges take the new value).
    ///
    /// # Panics
    /// When either slice disagrees with the registered feed count.
    pub fn add_delta(&self, prev: &[SourceSample], now: &[SourceSample]) {
        assert_eq!(prev.len(), self.feeds.len(), "one prev sample per feed");
        assert_eq!(now.len(), self.feeds.len(), "one new sample per feed");
        for ((feed, prev), now) in self.feeds.iter().zip(prev).zip(now) {
            feed.records.add(now.delivered - prev.delivered);
            feed.batches.add(now.batches - prev.batches);
            feed.reconnects.add(now.reconnects - prev.reconnects);
            feed.drops.add(now.drops - prev.drops);
            feed.queue_depth.set(now.queue_depth);
            feed.queue_peak.set(now.queue_peak);
        }
    }

    /// Checks that every exported handle equals the corresponding
    /// sample field; returns the mismatches on failure.
    pub fn verify(&self, samples: &[SourceSample]) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        if samples.len() != self.feeds.len() {
            return Err(vec![format!(
                "source sample count {} != registered feeds {}",
                samples.len(),
                self.feeds.len()
            )]);
        }
        if self.sources.get() != self.feeds.len() as u64 {
            errors.push(format!(
                "quicsand_sources {} != feed count {}",
                self.sources.get(),
                self.feeds.len()
            ));
        }
        for (index, (feed, sample)) in self.feeds.iter().zip(samples).enumerate() {
            let mut check = |name: &str, got: u64, want: u64| {
                if got != want {
                    errors.push(format!(
                        "{name}{{source=\"{index}\"}} {got} != stats {want}"
                    ));
                }
            };
            check(
                "quicsand_source_records_total",
                feed.records.get(),
                sample.delivered,
            );
            check(
                "quicsand_source_batches_total",
                feed.batches.get(),
                sample.batches,
            );
            check(
                "quicsand_source_reconnects_total",
                feed.reconnects.get(),
                sample.reconnects,
            );
            check(
                "quicsand_source_drops_total",
                feed.drops.get(),
                sample.drops,
            );
            check(
                "quicsand_source_queue_depth",
                feed.queue_depth.get(),
                sample.queue_depth,
            );
            check(
                "quicsand_source_queue_peak",
                feed.queue_peak.get(),
                sample.queue_peak,
            );
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_interned_and_stable() {
        assert_eq!(source_label(0), "0");
        assert_eq!(source_label(15), "15");
        let big = source_label(123);
        assert_eq!(big, "123");
        // Cached: the same pointer comes back, no re-leak.
        assert!(std::ptr::eq(big, source_label(123)));
    }

    #[test]
    fn delta_sync_reconciles() {
        let registry = MetricsRegistry::new();
        let metrics = SourceSetMetrics::register(&registry, 2);
        let zero = [SourceSample::default(); 2];
        let mid = [
            SourceSample {
                delivered: 10,
                batches: 2,
                reconnects: 1,
                drops: 1,
                queue_depth: 3,
                queue_peak: 5,
            },
            SourceSample {
                delivered: 4,
                batches: 1,
                ..SourceSample::default()
            },
        ];
        metrics.add_delta(&zero, &mid);
        metrics.verify(&mid).expect("mid sync reconciles");
        let end = [
            SourceSample {
                delivered: 25,
                batches: 4,
                reconnects: 2,
                drops: 2,
                queue_depth: 0,
                queue_peak: 7,
            },
            SourceSample {
                delivered: 9,
                batches: 3,
                queue_peak: 2,
                ..SourceSample::default()
            },
        ];
        metrics.add_delta(&mid, &end);
        metrics.verify(&end).expect("end sync reconciles");
        metrics.verify(&mid).expect_err("stale samples mismatch");
    }

    #[test]
    fn per_source_series_are_volatile_only() {
        let registry = MetricsRegistry::new();
        let metrics = SourceSetMetrics::register(&registry, 3);
        metrics.add_delta(
            &[SourceSample::default(); 3],
            &[SourceSample {
                delivered: 5,
                queue_peak: 2,
                ..SourceSample::default()
            }; 3],
        );
        let stable = registry.render_prometheus(true);
        assert!(
            !stable.contains("quicsand_source") && !stable.contains("quicsand_sources"),
            "per-source series leaked into the stable exposition:\n{stable}"
        );
        let full = registry.render_prometheus(false);
        for family in [
            "quicsand_source_records_total",
            "quicsand_source_batches_total",
            "quicsand_source_reconnects_total",
            "quicsand_source_drops_total",
            "quicsand_source_queue_depth",
            "quicsand_source_queue_peak",
            "quicsand_sources",
        ] {
            assert!(full.contains(family), "missing {family}:\n{full}");
        }
    }
}
