//! quicsand-obs: a lock-free metrics layer for the QUICsand pipeline.
//!
//! The registry hands out cheap, cloneable handles (`Counter`, `Gauge`,
//! `Histogram`) backed by relaxed atomics; registration takes a lock
//! once at setup, after which every increment/observation is lock-free.
//! Handles are shared across shards by cloning, so totals are exact at
//! any shard count — the reconciliation invariant the rest of the
//! workspace builds on is that every exported counter equals the
//! corresponding `IngestStats`/`QuarantineStats`/`PipelineStats`/
//! `LiveStats` field, bit for bit.
//!
//! Two expositions are supported:
//! - Prometheus text format ([`MetricsRegistry::render_prometheus`])
//! - a canonical, deterministically-ordered JSON dump
//!   ([`MetricsRegistry::render_json`])
//!
//! Metrics carry a [`Stability`] class: `Stable` metrics are pure
//! functions of the input trace (safe to golden-snapshot), `Volatile`
//! metrics depend on wall clock or machine configuration (stage
//! walltimes, thread counts) and are excluded from snapshot-grade
//! exports.

mod events;
mod export;
mod registry;
mod source;

pub use events::EventsMetrics;
pub use registry::{
    Counter, Gauge, Histogram, MetricKind, MetricsRegistry, Sample, Stability,
    ATTACK_DURATION_MICROS_BUCKETS, ATTACK_PACKETS_BUCKETS, STAGE_WALLTIME_MICROS_BUCKETS,
};
pub use source::{source_label, SourceFeedMetrics, SourceSample, SourceSetMetrics};

pub const METRICS_JSON_SCHEMA: &str = "quicsand.metrics/v1";
