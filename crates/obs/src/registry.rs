//! The registry proper: registration (locked, setup-time) and handle
//! types (lock-free, hot-path).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a metric is a pure function of the input trace.
///
/// `Stable` metrics are deterministic for a given trace and
/// configuration — counters over records, sessions, alerts. They are
/// safe to golden-snapshot. `Volatile` metrics depend on wall clock or
/// machine shape (stage walltimes, thread counts, checkpoint sizes
/// driven by CLI cadence) and are excluded from snapshot-grade exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    Stable,
    Volatile,
}

impl Stability {
    pub fn label(self) -> &'static str {
        match self {
            Stability::Stable => "stable",
            Stability::Volatile => "volatile",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Monotone counter. `Clone` shares the same underlying atomic, so a
/// handle cloned into N shards still sums into one exact total.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins (or high-water / accumulating) gauge over `u64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: u64) {
        if v != 0 {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` observations (integral units —
/// microseconds, packets — so counts and sums reconcile exactly).
///
/// Buckets are upper-inclusive (`v <= bound`) with an implicit `+Inf`
/// overflow bucket; stored counts are per-bucket (non-cumulative) and
/// rendered cumulatively for Prometheus.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub fn detached(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        let inner = &*self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts: one entry per finite bound
    /// plus the trailing overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Bucket-interpolated quantile estimate (`0.0 ..= 1.0`), in the
    /// histogram's native unit. Observations in the overflow bucket
    /// saturate to the largest finite bound. Returns `None` when empty.
    ///
    /// The rank is continuous (`q * count`), not rounded to a whole
    /// observation: with few samples per bucket an integer rank makes
    /// every quantile collapse to the bucket's upper bound (at one
    /// observation, p50 == p99 structurally). Continuous interpolation
    /// keeps distinct quantiles distinct wherever the bounds allow.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let counts = self.bucket_counts();
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += c;
            if cum as f64 >= rank {
                let lower = if idx == 0 { 0 } else { self.0.bounds[idx - 1] };
                let upper = self
                    .0
                    .bounds
                    .get(idx)
                    .copied()
                    .unwrap_or_else(|| self.0.bounds.last().copied().unwrap_or(0));
                let within = ((rank - prev_cum as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lower as f64 + (upper.saturating_sub(lower)) as f64 * within);
            }
        }
        self.0.bounds.last().map(|&b| b as f64)
    }
}

/// Stage-walltime buckets (microseconds): 25 µs … 60 s, roughly
/// 1.5–2.5× steps. Stage walltimes at current speeds cluster in the
/// 50 µs – 100 ms band; the original decade-ish buckets were so wide
/// there that p50 and p99 landed in the same bucket and reported the
/// same interpolated value (`BENCH_shard_scaling.json` showed
/// p50 == p99 for every stage).
pub const STAGE_WALLTIME_MICROS_BUCKETS: &[u64] = &[
    25, 50, 100, 150, 250, 400, 650, 1_000, 1_500, 2_500, 4_000, 6_500, 10_000, 15_000, 25_000,
    40_000, 65_000, 100_000, 150_000, 250_000, 400_000, 650_000, 1_000_000, 1_500_000, 2_500_000,
    4_000_000, 6_500_000, 10_000_000, 15_000_000, 30_000_000, 60_000_000,
];

/// Attack-duration buckets (microseconds): 1 s … 1 h. The paper's
/// flood duration CDF (fig. 11) spans seconds to hours.
pub const ATTACK_DURATION_MICROS_BUCKETS: &[u64] = &[
    1_000_000,
    5_000_000,
    15_000_000,
    60_000_000,
    300_000_000,
    900_000_000,
    1_800_000_000,
    3_600_000_000,
];

/// Attack-size buckets (packets): the Moore-threshold floor is 25.
pub const ATTACK_PACKETS_BUCKETS: &[u64] = &[
    25, 50, 100, 250, 500, 1_000, 5_000, 25_000, 100_000, 1_000_000,
];

#[derive(Clone)]
enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone)]
pub(crate) struct Entry {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    pub(crate) stability: Stability,
    pub(crate) labels: Vec<(&'static str, &'static str)>,
    value: Value,
}

impl Entry {
    pub(crate) fn kind(&self) -> MetricKind {
        match self.value {
            Value::Counter(_) => MetricKind::Counter,
            Value::Gauge(_) => MetricKind::Gauge,
            Value::Histogram(_) => MetricKind::Histogram,
        }
    }

    pub(crate) fn sample(&self) -> Sample {
        match &self.value {
            Value::Counter(c) => Sample::Counter(c.get()),
            Value::Gauge(g) => Sample::Gauge(g.get()),
            Value::Histogram(h) => Sample::Histogram {
                count: h.count(),
                sum: h.sum(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
            },
        }
    }
}

/// A point-in-time reading of one metric, for tests and tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sample {
    Counter(u64),
    Gauge(u64),
    Histogram {
        count: u64,
        sum: u64,
        bounds: Vec<u64>,
        /// Per-bucket counts, overflow last (non-cumulative).
        buckets: Vec<u64>,
    },
}

impl Sample {
    /// The scalar value for counters/gauges, the observation count for
    /// histograms.
    pub fn value(&self) -> u64 {
        match self {
            Sample::Counter(v) | Sample::Gauge(v) => *v,
            Sample::Histogram { count, .. } => *count,
        }
    }
}

/// Registry of metric families. Registration locks; handles don't.
///
/// One registry per pipeline run (batch analysis or live engine), never
/// a process-global — that is what makes N-shard totals exact and tests
/// hermetic.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("metrics", &entries.len())
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn register(&self, entry: Entry) {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        for existing in entries.iter() {
            if existing.name == entry.name {
                assert_eq!(
                    existing.kind(),
                    entry.kind(),
                    "metric {} re-registered with a different kind",
                    entry.name
                );
                assert!(
                    existing.labels != entry.labels,
                    "metric {} registered twice with identical labels {:?}",
                    entry.name,
                    entry.labels
                );
            }
        }
        entries.push(entry);
    }

    pub fn counter(&self, name: &'static str, help: &'static str, stability: Stability) -> Counter {
        self.counter_with(name, help, stability, &[])
    }

    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        labels: &[(&'static str, &'static str)],
    ) -> Counter {
        let handle = Counter::detached();
        self.register(Entry {
            name,
            help,
            stability,
            labels: sorted_labels(labels),
            value: Value::Counter(handle.clone()),
        });
        handle
    }

    pub fn gauge(&self, name: &'static str, help: &'static str, stability: Stability) -> Gauge {
        self.gauge_with(name, help, stability, &[])
    }

    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        labels: &[(&'static str, &'static str)],
    ) -> Gauge {
        let handle = Gauge::detached();
        self.register(Entry {
            name,
            help,
            stability,
            labels: sorted_labels(labels),
            value: Value::Gauge(handle.clone()),
        });
        handle
    }

    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        bounds: &[u64],
    ) -> Histogram {
        self.histogram_with(name, help, stability, bounds, &[])
    }

    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        bounds: &[u64],
        labels: &[(&'static str, &'static str)],
    ) -> Histogram {
        let handle = Histogram::detached(bounds);
        self.register(Entry {
            name,
            help,
            stability,
            labels: sorted_labels(labels),
            value: Value::Histogram(handle.clone()),
        });
        handle
    }

    /// Point-in-time reading of one metric by name + exact label set.
    pub fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<Sample> {
        let mut want: Vec<(&str, &str)> = labels.to_vec();
        want.sort_unstable();
        let entries = self.entries.lock().expect("metrics registry poisoned");
        entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == want.len()
                    && e.labels
                        .iter()
                        .zip(want.iter())
                        .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
            })
            .map(Entry::sample)
    }

    /// Sorted snapshot of all entries (optionally stable-only), used by
    /// both expositions so their ordering is identical.
    pub(crate) fn snapshot_entries(&self, stable_only: bool) -> Vec<Entry> {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out: Vec<Entry> = entries
            .iter()
            .filter(|e| !stable_only || e.stability == Stability::Stable)
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn sorted_labels(labels: &[(&'static str, &'static str)]) -> Vec<(&'static str, &'static str)> {
    let mut out = labels.to_vec();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_total() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("t_total", "help", Stability::Stable);
        let clone = c.clone();
        c.add(3);
        clone.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(registry.sample("t_total", &[]), Some(Sample::Counter(4)));
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let g = Gauge::detached();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.add(2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::detached(&[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5556);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        // Median (rank 3) lands in the (10, 100] bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 10.0 && p50 <= 100.0, "p50={p50}");
        // p99 lands in the overflow bucket -> saturates at 1000.
        assert_eq!(h.quantile(0.99).unwrap(), 1000.0);
    }

    #[test]
    fn sparse_histogram_quantiles_stay_distinguishable() {
        // One observation per stage is the batch pipeline's normal
        // case; the continuous rank must still spread p50 and p99
        // across the bucket instead of collapsing both to its upper
        // bound.
        let h = Histogram::detached(&[10, 100, 1000]);
        h.observe(50);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 < p99, "p50={p50} p99={p99}");
        assert!(p50 > 10.0 && p99 <= 100.0, "both stay in (10, 100]");
        // Quantiles remain monotone in q.
        assert!(h.quantile(0.01).unwrap() <= p50);
    }

    #[test]
    fn labeled_metrics_are_distinct() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("k_total", "h", Stability::Stable, &[("kind", "a")]);
        let b = registry.counter_with("k_total", "h", Stability::Stable, &[("kind", "b")]);
        a.add(1);
        b.add(2);
        assert_eq!(
            registry.sample("k_total", &[("kind", "a")]),
            Some(Sample::Counter(1))
        );
        assert_eq!(
            registry.sample("k_total", &[("kind", "b")]),
            Some(Sample::Counter(2))
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let registry = MetricsRegistry::new();
        let _a = registry.counter("dup_total", "h", Stability::Stable);
        let _b = registry.counter("dup_total", "h", Stability::Stable);
    }

    #[test]
    fn stable_only_snapshot_filters_volatile() {
        let registry = MetricsRegistry::new();
        let _s = registry.counter("s_total", "h", Stability::Stable);
        let _v = registry.gauge("v_now", "h", Stability::Volatile);
        assert_eq!(registry.snapshot_entries(true).len(), 1);
        assert_eq!(registry.snapshot_entries(false).len(), 2);
    }
}
