//! Metric bundle for the typed event export.
//!
//! Both families are [`Stability::Volatile`]: whether a run exports a
//! qlog stream (and how many bytes the framing costs) is an operator
//! choice, not a property of the logical trace, so the *stable*
//! exposition stays byte-identical with and without `--events-out`.

use crate::registry::{Counter, MetricsRegistry, Stability};

/// Handles for the qlog event-export counters.
#[derive(Debug, Clone)]
pub struct EventsMetrics {
    /// `quicsand_events_emitted_total` — typed events serialized into
    /// the qlog stream (excludes the header record).
    pub emitted_total: Counter,
    /// `quicsand_events_qlog_bytes_total` — bytes written to the qlog
    /// sink, RFC 7464 framing included.
    pub qlog_bytes_total: Counter,
}

impl EventsMetrics {
    /// Registers the event-export families on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        EventsMetrics {
            emitted_total: registry.counter(
                "quicsand_events_emitted_total",
                "Typed events serialized into the qlog export stream",
                Stability::Volatile,
            ),
            qlog_bytes_total: registry.counter(
                "quicsand_events_qlog_bytes_total",
                "Bytes written to the qlog export sink (RFC 7464 framing included)",
                Stability::Volatile,
            ),
        }
    }

    /// Publishes a finished writer's totals (events, bytes).
    pub fn add_totals(&self, events: u64, bytes: u64) {
        self.emitted_total.add(events);
        self.qlog_bytes_total.add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_export_series_are_volatile_only() {
        let registry = MetricsRegistry::new();
        let metrics = EventsMetrics::register(&registry);
        metrics.add_totals(42, 9001);
        assert_eq!(metrics.emitted_total.get(), 42);
        assert_eq!(metrics.qlog_bytes_total.get(), 9001);
        let stable = registry.render_prometheus(true);
        assert!(
            !stable.contains("quicsand_events"),
            "event-export series leaked into the stable exposition:\n{stable}"
        );
        let full = registry.render_prometheus(false);
        assert!(full.contains("quicsand_events_emitted_total"));
        assert!(full.contains("quicsand_events_qlog_bytes_total"));
    }
}
