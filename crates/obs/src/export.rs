//! Expositions: Prometheus text format and a canonical JSON dump.
//!
//! Both render the same sorted snapshot (by metric name, then label
//! set), so a given registry state has exactly one textual form — which
//! is what makes golden-snapshot testing of the exports meaningful.

use crate::registry::{Entry, MetricsRegistry};
use crate::METRICS_JSON_SCHEMA;
use std::fmt::Write;

impl MetricsRegistry {
    /// Prometheus text exposition (text/plain; version=0.0.4).
    ///
    /// `stable_only` excludes `Volatile` metrics, giving a
    /// deterministic document for a given trace.
    pub fn render_prometheus(&self, stable_only: bool) -> String {
        let entries = self.snapshot_entries(stable_only);
        let mut out = String::new();
        let mut last_family: Option<&'static str> = None;
        for entry in &entries {
            if last_family != Some(entry.name) {
                let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
                let _ = writeln!(out, "# TYPE {} {}", entry.name, entry.kind().label());
                last_family = Some(entry.name);
            }
            match entry.sample() {
                crate::Sample::Counter(v) | crate::Sample::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", entry.name, label_set(entry, &[]), v);
                }
                crate::Sample::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                } => {
                    let mut cum = 0u64;
                    for (idx, bucket) in buckets.iter().enumerate() {
                        cum += bucket;
                        let le = bounds
                            .get(idx)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            entry.name,
                            label_set(entry, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(out, "{}_sum{} {}", entry.name, label_set(entry, &[]), sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        entry.name,
                        label_set(entry, &[]),
                        count
                    );
                }
            }
        }
        out
    }

    /// Canonical JSON dump: schema-tagged, sorted by (name, labels),
    /// fixed key order, integral values only — byte-stable for a given
    /// registry state.
    pub fn render_json(&self, stable_only: bool) -> String {
        let entries = self.snapshot_entries(stable_only);
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", METRICS_JSON_SCHEMA);
        out.push_str("  \"metrics\": [\n");
        for (i, entry) in entries.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(
                out,
                "\"name\": {}, \"kind\": \"{}\", \"stability\": \"{}\", \"labels\": {{",
                json_string(entry.name),
                entry.kind().label(),
                entry.stability.label()
            );
            for (j, (k, v)) in entry.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(k), json_string(v));
            }
            out.push('}');
            match entry.sample() {
                crate::Sample::Counter(v) | crate::Sample::Gauge(v) => {
                    let _ = write!(out, ", \"value\": {v}");
                }
                crate::Sample::Histogram {
                    count,
                    sum,
                    bounds,
                    buckets,
                } => {
                    let _ = write!(out, ", \"count\": {count}, \"sum\": {sum}, \"buckets\": [");
                    let mut cum = 0u64;
                    for (idx, bucket) in buckets.iter().enumerate() {
                        if idx > 0 {
                            out.push_str(", ");
                        }
                        cum += bucket;
                        let le = bounds
                            .get(idx)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = write!(out, "{{\"le\": {}, \"count\": {cum}}}", json_string(&le));
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 < entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn label_set(entry: &Entry, extra: &[(&str, &str)]) -> String {
    if entry.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = entry
        .labels
        .iter()
        .map(|(k, v)| (*k, *v))
        .chain(extra.iter().copied())
        .collect();
    pairs.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            k,
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use crate::{MetricsRegistry, Stability};

    #[test]
    fn prometheus_render_is_sorted_and_complete() {
        let registry = MetricsRegistry::new();
        let b = registry.counter_with("z_total", "z help", Stability::Stable, &[("kind", "b")]);
        let a = registry.counter_with("z_total", "z help", Stability::Stable, &[("kind", "a")]);
        let g = registry.gauge("a_now", "a help", Stability::Stable);
        a.add(1);
        b.add(2);
        g.set(7);
        let text = registry.render_prometheus(false);
        let expected = "# HELP a_now a help\n\
                        # TYPE a_now gauge\n\
                        a_now 7\n\
                        # HELP z_total z help\n\
                        # TYPE z_total counter\n\
                        z_total{kind=\"a\"} 1\n\
                        z_total{kind=\"b\"} 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_render_is_cumulative_with_inf() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_micros", "latency", Stability::Volatile, &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let text = registry.render_prometheus(false);
        assert!(text.contains("lat_micros_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("lat_micros_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_micros_sum 5055\n"));
        assert!(text.contains("lat_micros_count 3\n"));
    }

    #[test]
    fn json_render_is_canonical() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("one_total", "counts", Stability::Stable);
        c.add(3);
        let json = registry.render_json(false);
        assert!(json.starts_with("{\n  \"schema\": \"quicsand.metrics/v1\","));
        assert!(json.contains(
            "{\"name\": \"one_total\", \"kind\": \"counter\", \"stability\": \"stable\", \
             \"labels\": {}, \"value\": 3}"
        ));
        // Rendering twice is byte-identical.
        assert_eq!(json, registry.render_json(false));
    }
}
