//! Telescope-pipeline benchmarks: classification, dissection,
//! sessionization and DoS inference at capture scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_dissect::{classify_record, dissect_udp_payload};
use quicsand_net::{Duration, Timestamp};
use quicsand_sessions::dos::{detect_attacks, AttackProtocol, DosThresholds};
use quicsand_sessions::multivector::classify_multivector;
use quicsand_sessions::session::{sessionize, timeout_sweep, SessionConfig};
use quicsand_telescope::TelescopePipeline;
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::net::Ipv4Addr;

fn scenario() -> &'static Scenario {
    use std::sync::OnceLock;
    static CELL: OnceLock<Scenario> = OnceLock::new();
    CELL.get_or_init(|| Scenario::generate(&ScenarioConfig::test()))
}

fn bench_classify_and_dissect(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("dissect");
    group.throughput(Throughput::Elements(s.records.len() as u64));
    group.bench_function("classify_capture", |b| {
        b.iter(|| {
            s.records
                .iter()
                .filter(|r| {
                    matches!(
                        classify_record(black_box(r)),
                        quicsand_dissect::Classification::QuicCandidate(_)
                    )
                })
                .count()
        })
    });
    // Per-payload dissection of a flood response datagram.
    let response = s
        .records
        .iter()
        .find_map(|r| {
            let p = r.udp_payload()?;
            (r.transport.src_port() == Some(443) && dissect_udp_payload(p).is_ok())
                .then(|| p.clone())
        })
        .expect("scenario contains valid backscatter");
    group.throughput(Throughput::Bytes(response.len() as u64));
    group.bench_function("dissect_backscatter_datagram", |b| {
        b.iter(|| dissect_udp_payload(black_box(&response)).unwrap())
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("telescope");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.records.len() as u64));
    group.bench_function("ingest_full_capture", |b| {
        b.iter(|| {
            let mut pipeline = TelescopePipeline::new();
            pipeline.ingest_all(black_box(&s.records));
            pipeline.stats().quic_valid
        })
    });
    // Sharded ingest at increasing worker counts (deterministic merge
    // included in the measurement — it is part of the cost).
    for threads in [1u64, 2, 4, 8] {
        group.bench_function(&format!("ingest_parallel_{threads}"), |b| {
            b.iter(|| {
                let (quic, baseline, stats) =
                    quicsand_telescope::ingest_parallel(black_box(&s.records), threads as usize);
                quic.len() + baseline.len() + stats.quic_valid as usize
            })
        });
    }
    group.finish();
}

fn bench_analysis_frontend(c: &mut Criterion) {
    let s = scenario();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.records.len() as u64));
    for threads in [1usize, 8] {
        group.bench_function(&format!("run_threads_{threads}"), |b| {
            b.iter(|| {
                Analysis::run(
                    black_box(s),
                    &AnalysisConfig {
                        threads,
                        ..AnalysisConfig::default()
                    },
                )
                .quic_attacks
                .len()
            })
        });
    }
    group.finish();
}

fn synthetic_stream(n: u64) -> Vec<(Timestamp, Ipv4Addr)> {
    (0..n)
        .map(|i| {
            (
                Timestamp::from_secs(i / 7),
                Ipv4Addr::from(0x0a00_0000 + (i % 997) as u32),
            )
        })
        .collect()
}

fn bench_sessions(c: &mut Criterion) {
    let stream = synthetic_stream(100_000);
    let mut group = c.benchmark_group("sessions");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("sessionize_100k", |b| {
        b.iter(|| sessionize(stream.iter().copied(), SessionConfig::default()).len())
    });
    let timeouts: Vec<Duration> = (1..=60).map(Duration::from_mins).collect();
    group.bench_function("timeout_sweep_60pts_100k", |b| {
        b.iter(|| {
            timeout_sweep(stream.iter().copied(), &timeouts)
                .counts
                .len()
        })
    });
    group.finish();
}

fn bench_dos(c: &mut Criterion) {
    let s = scenario();
    let analysis = Analysis::run(s, &AnalysisConfig::default());
    let mut group = c.benchmark_group("dos");
    group.throughput(Throughput::Elements(analysis.response_sessions.len() as u64));
    group.bench_function("detect_attacks", |b| {
        b.iter(|| {
            detect_attacks(
                black_box(&analysis.response_sessions),
                AttackProtocol::Quic,
                &DosThresholds::moore(),
            )
            .len()
        })
    });
    group.bench_function("multivector_correlation", |b| {
        b.iter(|| {
            classify_multivector(
                black_box(&analysis.quic_attacks),
                black_box(&analysis.common_attacks),
            )
            .attacks
            .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classify_and_dissect,
    bench_ingest,
    bench_analysis_frontend,
    bench_sessions,
    bench_dos
);
criterion_main!(benches);
