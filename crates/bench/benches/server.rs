//! Server-model benchmarks: the per-packet costs behind Table 1.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use quicsand_net::Timestamp;
use quicsand_server::client::{run_handshake, QuicClient};
use quicsand_server::model::{QuicServerSim, ServerConfig};
use quicsand_server::replay::{replay_flood, InitialStream, ReplayConfig};
use std::net::Ipv4Addr;

fn bench_accept_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(20);

    // Accept path: fresh server per iteration batch, distinct initials.
    group.bench_function("handle_initial_accept", |b| {
        b.iter_batched(
            || {
                let server = QuicServerSim::new(
                    ServerConfig {
                        workers: 128,
                        ..ServerConfig::default()
                    },
                    1,
                );
                let packets: Vec<_> = InitialStream::new(7).take(256).collect();
                (server, packets)
            },
            |(mut server, packets)| {
                for (i, p) in packets.iter().enumerate() {
                    server.handle_datagram(
                        Timestamp::from_micros(i as u64 * 100),
                        p.src_ip,
                        p.src_port,
                        &p.datagram,
                    );
                }
                black_box(server.stats().accepted)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Retry path: stateless, should be markedly cheaper per packet.
    group.bench_function("handle_initial_retry", |b| {
        b.iter_batched(
            || {
                let server = QuicServerSim::new(
                    ServerConfig {
                        workers: 128,
                        ..ServerConfig::default()
                    }
                    .with_retry(true),
                    1,
                );
                let packets: Vec<_> = InitialStream::new(7).take(256).collect();
                (server, packets)
            },
            |(mut server, packets)| {
                for (i, p) in packets.iter().enumerate() {
                    server.handle_datagram(
                        Timestamp::from_micros(i as u64 * 100),
                        p.src_ip,
                        p.src_port,
                        &p.datagram,
                    );
                }
                black_box(server.stats().retries_sent)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_handshake(c: &mut Criterion) {
    let mut group = c.benchmark_group("handshake");
    for retry in [false, true] {
        group.bench_function(
            if retry {
                "full_with_retry"
            } else {
                "full_no_retry"
            },
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut server =
                        QuicServerSim::new(ServerConfig::default().with_retry(retry), seed);
                    let mut client = QuicClient::new(seed);
                    run_handshake(
                        &mut server,
                        &mut client,
                        Ipv4Addr::new(10, 0, 0, 1),
                        4242,
                        Timestamp::from_secs(1),
                    );
                    assert!(client.is_established());
                    black_box(client.round_trips())
                })
            },
        );
    }
    group.finish();
}

fn bench_replay_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("table1_row_10k_requests", |b| {
        b.iter(|| {
            replay_flood(
                &ReplayConfig {
                    pps: 1_000,
                    total_requests: 10_000,
                    server: ServerConfig::default(),
                },
                black_box(1),
            )
            .answered
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_accept_path,
    bench_handshake,
    bench_replay_row
);
criterion_main!(benches);
