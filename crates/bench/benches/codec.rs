//! Wire-codec microbenchmarks: varints, packet seal/parse/open, retry
//! tokens, SipHash. These are the per-packet costs every telescope-
//! and server-side component pays.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use quicsand_wire::crypto::{seal, Direction, InitialSecrets};
use quicsand_wire::packet::{parse_datagram, Packet, PacketPayload};
use quicsand_wire::siphash::{siphash24, SipKey};
use quicsand_wire::tls::{cipher_suite, ClientHello};
use quicsand_wire::token::TokenMinter;
use quicsand_wire::varint::{read_varint, write_varint};
use quicsand_wire::{ConnectionId, Frame, Version, MIN_INITIAL_SIZE};

fn sample_initial() -> (Vec<u8>, InitialSecrets) {
    let dcid = ConnectionId::from_u64(0xdead_beef);
    let keys = InitialSecrets::derive(Version::V1, &dcid);
    let hello = ClientHello {
        random: [7; 32],
        cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
        server_name: Some("www.example.com".into()),
        alpn: vec!["h3".into()],
        key_share: Bytes::from_static(&[3; 32]),
    };
    let wire = Packet::Initial {
        version: Version::V1,
        dcid,
        scid: ConnectionId::from_u64(0x1234),
        token: Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Crypto {
            offset: 0,
            data: Bytes::from(hello.encode()),
        }]),
    }
    .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
    .unwrap();
    (wire, keys)
}

fn bench_varint(c: &mut Criterion) {
    let mut group = c.benchmark_group("varint");
    group.bench_function("write_4byte", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(8);
            write_varint(&mut buf, black_box(123_456)).unwrap();
            buf
        })
    });
    let mut encoded = Vec::new();
    write_varint(&mut encoded, 123_456).unwrap();
    group.bench_function("read_4byte", |b| {
        b.iter(|| {
            let mut slice = black_box(&encoded[..]);
            read_varint(&mut slice).unwrap()
        })
    });
    group.finish();
}

fn bench_packet(c: &mut Criterion) {
    let (wire, keys) = sample_initial();
    let mut group = c.benchmark_group("packet");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse_initial_1200B", |b| {
        b.iter(|| parse_datagram(black_box(&wire), 8).unwrap())
    });
    group.bench_function("parse_and_open_initial_1200B", |b| {
        b.iter(|| {
            let packets = parse_datagram(black_box(&wire), 8).unwrap();
            let (p, aad) = &packets[0];
            p.open(keys.client, None, aad).unwrap()
        })
    });
    group.bench_function("seal_1200B", |b| {
        let plaintext = vec![0u8; 1150];
        b.iter(|| {
            seal(
                keys.key(Direction::ClientToServer),
                0,
                b"aad",
                black_box(&plaintext),
            )
        })
    });
    group.bench_function("build_padded_initial", |b| b.iter(|| sample_initial().0));
    group.finish();
}

fn bench_token(c: &mut Criterion) {
    let minter = TokenMinter::new(SipKey { k0: 1, k1: 2 });
    let odcid = ConnectionId::from_u64(9);
    let token = minter.mint(100, 0x0a00_0001, &odcid);
    let mut group = c.benchmark_group("retry_token");
    group.bench_function("mint", |b| {
        b.iter(|| minter.mint(black_box(100), 0x0a00_0001, &odcid))
    });
    group.bench_function("validate", |b| {
        b.iter(|| {
            minter
                .validate(black_box(&token), 110, 0x0a00_0001)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let key = SipKey { k0: 1, k1: 2 };
    let data = vec![0xabu8; 1200];
    let mut group = c.benchmark_group("siphash");
    group.throughput(Throughput::Bytes(1200));
    group.bench_function("hash_1200B", |b| {
        b.iter(|| siphash24(key, black_box(&data)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_varint,
    bench_packet,
    bench_token,
    bench_siphash
);
criterion_main!(benches);
