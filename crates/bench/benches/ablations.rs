//! Ablation benches for the design choices called out in DESIGN.md §3:
//!
//! 1. **Streaming vs batch sessionization** — the streaming sessionizer
//!    emits sessions as they close; the batch variant materializes all
//!    per-source timestamp vectors first.
//! 2. **Port pre-filter vs dissect-everything** — the paper's §4.1
//!    two-stage classification against naively dissecting every UDP
//!    payload.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use quicsand_dissect::{classify_record, dissect_udp_payload, Classification};
use quicsand_net::{Duration, Timestamp};
use quicsand_sessions::session::{sessionize, Session, SessionConfig};
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn synthetic_stream(n: u64) -> Vec<(Timestamp, Ipv4Addr)> {
    (0..n)
        .map(|i| {
            (
                Timestamp::from_secs(i / 5),
                Ipv4Addr::from(0x0a00_0000 + (i % 1_733) as u32),
            )
        })
        .collect()
}

/// The batch alternative: group every packet per source, then split on
/// gaps. Holds the whole capture's timestamps in memory.
fn batch_sessionize(stream: &[(Timestamp, Ipv4Addr)], timeout: Duration) -> Vec<Session> {
    let mut by_src: HashMap<Ipv4Addr, Vec<Timestamp>> = HashMap::new();
    for (ts, src) in stream {
        by_src.entry(*src).or_default().push(*ts);
    }
    let mut sessions = Vec::new();
    for (src, times) in by_src {
        let mut start = times[0];
        let mut last = times[0];
        let mut count = 0u64;
        let mut minute_counts: HashMap<u64, u64> = HashMap::new();
        for ts in times {
            if ts.saturating_since(last) > timeout {
                sessions.push(Session {
                    src,
                    start,
                    end: last,
                    packet_count: count,
                    minute_counts: std::mem::take(&mut minute_counts),
                    cid_key: None,
                });
                start = ts;
                count = 0;
            }
            last = ts;
            count += 1;
            *minute_counts.entry(ts.minute_bucket()).or_default() += 1;
        }
        sessions.push(Session {
            src,
            start,
            end: last,
            packet_count: count,
            minute_counts,
            cid_key: None,
        });
    }
    sessions
}

fn bench_sessionization_strategies(c: &mut Criterion) {
    let stream = synthetic_stream(100_000);
    let timeout = Duration::from_mins(5);
    let mut group = c.benchmark_group("ablation_sessionize");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("streaming", |b| {
        b.iter(|| {
            sessionize(
                stream.iter().copied(),
                SessionConfig {
                    timeout,
                    skew_tolerance: Duration::ZERO,
                },
            )
            .len()
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| batch_sessionize(black_box(&stream), timeout).len())
    });
    // Both strategies must agree on the session count.
    assert_eq!(
        sessionize(
            stream.iter().copied(),
            SessionConfig {
                timeout,
                skew_tolerance: Duration::ZERO
            }
        )
        .len(),
        batch_sessionize(&stream, timeout).len()
    );
    group.finish();
}

fn bench_prefilter_strategies(c: &mut Criterion) {
    let scenario = Scenario::generate(&ScenarioConfig::test());
    let mut group = c.benchmark_group("ablation_prefilter");
    group.sample_size(10);
    group.throughput(Throughput::Elements(scenario.records.len() as u64));
    group.bench_function("port_filter_then_dissect", |b| {
        b.iter(|| {
            scenario
                .records
                .iter()
                .filter(|r| matches!(classify_record(r), Classification::QuicCandidate(_)))
                .filter_map(|r| dissect_udp_payload(r.udp_payload()?).ok())
                .count()
        })
    });
    group.bench_function("dissect_everything", |b| {
        b.iter(|| {
            scenario
                .records
                .iter()
                .filter_map(|r| dissect_udp_payload(r.udp_payload()?).ok())
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sessionization_strategies,
    bench_prefilter_strategies
);
criterion_main!(benches);
