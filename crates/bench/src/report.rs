//! Schema-versioned benchmark reports (`BENCH_<name>.json`) and the
//! regression comparison behind `scripts/ci.sh bench-smoke`.
//!
//! Bench binaries call [`BenchReport::write`] at the end of a run; the
//! file lands in `QUICSAND_BENCH_DIR` (default: the current directory)
//! as `BENCH_<name>.json`. The `bench_compare` binary validates the
//! schema and compares a fresh report against a committed baseline,
//! failing on regressions beyond the tolerance (default 20%,
//! overridable via `QUICSAND_BENCH_TOLERANCE` or `--tolerance`).
//!
//! Gating policy: **throughput** (lower is a regression) and
//! **peak sessions** (higher is a regression) are gated. The p50/p99
//! stage latencies are recorded for trend inspection but *not* gated —
//! on shared single-core runners their run-to-run variance exceeds any
//! honest tolerance, and the throughput gate subsumes them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Current `BENCH_*.json` schema version.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One benchmark run's headline numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA_VERSION`]; bumped on breaking changes.
    pub schema_version: u32,
    /// Benchmark name (`shard_scaling`, `live_throughput`, ...).
    pub name: String,
    /// The `QUICSAND_SCALE` label the run used.
    pub scale: String,
    /// Input records processed.
    pub records: u64,
    /// Wall time of the measured section, seconds.
    pub wall_seconds: f64,
    /// `records / wall_seconds`.
    pub throughput_rps: f64,
    /// Median per-shard/per-chunk stage walltime, milliseconds, from
    /// the run's metric registry histograms.
    pub p50_stage_latency_ms: BTreeMap<String, f64>,
    /// 99th percentile of the same distributions.
    pub p99_stage_latency_ms: BTreeMap<String, f64>,
    /// Peak simultaneous sessions (batch) or tracked victims (live).
    pub peak_sessions: u64,
    /// Worker threads / shards of the reported configuration.
    pub threads: usize,
}

impl BenchReport {
    /// The canonical file name for this report: per-tier baselines
    /// live side by side as `BENCH_<name>@<scale>.json`, with the
    /// historical `test` tier keeping the bare `BENCH_<name>.json` so
    /// committed baselines stay where they were.
    pub fn file_name(&self) -> String {
        scaled_file_name(&self.name, &self.scale)
    }

    /// Serializes to pretty JSON (stable field order via serde).
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("report serializes");
        out.push('\n');
        out
    }

    /// Writes `BENCH_<name>.json` into `QUICSAND_BENCH_DIR` (default
    /// `.`) and returns the path.
    pub fn write(&self) -> Result<PathBuf, String> {
        let dir = std::env::var("QUICSAND_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let path = Path::new(&dir).join(self.file_name());
        std::fs::write(&path, self.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Loads and schema-validates a report.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let report: BenchReport =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        report
            .validate()
            .map_err(|errors| format!("{}: {}", path.display(), errors.join("; ")))?;
        Ok(report)
    }

    /// Structural validity: version match, finite positive numbers, and
    /// per-stage `p50 <= p99`.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        if self.schema_version != BENCH_SCHEMA_VERSION {
            errors.push(format!(
                "schema_version {} != supported {BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.name.is_empty() {
            errors.push("empty benchmark name".into());
        }
        if self.records == 0 {
            errors.push("records == 0".into());
        }
        if !(self.wall_seconds.is_finite() && self.wall_seconds > 0.0) {
            errors.push(format!(
                "wall_seconds {} not finite/positive",
                self.wall_seconds
            ));
        }
        if !(self.throughput_rps.is_finite() && self.throughput_rps > 0.0) {
            errors.push(format!(
                "throughput_rps {} not finite/positive",
                self.throughput_rps
            ));
        }
        if self.threads == 0 {
            errors.push("threads == 0".into());
        }
        for (stage, p99) in &self.p99_stage_latency_ms {
            let p50 = self.p50_stage_latency_ms.get(stage).copied().unwrap_or(0.0);
            if p50 > *p99 {
                errors.push(format!("stage {stage}: p50 {p50} > p99 {p99}"));
            }
        }
        for (label, map) in [
            ("p50", &self.p50_stage_latency_ms),
            ("p99", &self.p99_stage_latency_ms),
        ] {
            for (stage, v) in map {
                if !(v.is_finite() && *v >= 0.0) {
                    errors.push(format!("{label}[{stage}] {v} not finite/non-negative"));
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Effective ingest-stage throughput implied by the report: the
    /// records of the run divided by the median ingest walltime. This
    /// is the number the zero-copy decode path is gated on — unlike
    /// end-to-end `throughput_rps` it isolates the capture→admission
    /// stage from sessionization and detection. `None` when the report
    /// carries no ingest-stage sample.
    pub fn ingest_stage_rps(&self) -> Option<f64> {
        let p50_ms = self.p50_stage_latency_ms.get("ingest").copied()?;
        if !(p50_ms.is_finite() && p50_ms > 0.0) {
            return None;
        }
        Some(self.records as f64 / (p50_ms / 1_000.0))
    }

    /// Compares `current` against the committed `baseline`: fails when
    /// throughput drops below `1 - tolerance` of the baseline or peak
    /// sessions grow beyond `1 + tolerance`. Returns human-readable
    /// regression descriptions.
    pub fn compare(
        baseline: &BenchReport,
        current: &BenchReport,
        tolerance: f64,
    ) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        if baseline.name != current.name {
            errors.push(format!(
                "name mismatch: baseline `{}` vs current `{}`",
                baseline.name, current.name
            ));
        }
        if baseline.scale != current.scale {
            errors.push(format!(
                "scale mismatch: baseline `{}` vs current `{}` (not comparable)",
                baseline.scale, current.scale
            ));
        }
        let floor = baseline.throughput_rps * (1.0 - tolerance);
        if current.throughput_rps < floor {
            errors.push(format!(
                "throughput regression: {:.0} rec/s < {:.0} ({:.0}% of baseline {:.0})",
                current.throughput_rps,
                floor,
                100.0 * current.throughput_rps / baseline.throughput_rps,
                baseline.throughput_rps
            ));
        }
        let ceiling = (baseline.peak_sessions as f64 * (1.0 + tolerance)).ceil() as u64;
        if current.peak_sessions > ceiling {
            errors.push(format!(
                "peak-session regression: {} > {} (baseline {} + {:.0}%)",
                current.peak_sessions,
                ceiling,
                baseline.peak_sessions,
                tolerance * 100.0
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

/// The on-disk name of the baseline for `name` at `scale` (see
/// [`BenchReport::file_name`]).
pub fn scaled_file_name(name: &str, scale: &str) -> String {
    if scale == "test" {
        format!("BENCH_{name}.json")
    } else {
        format!("BENCH_{name}@{scale}.json")
    }
}

/// The comparison tolerance: `QUICSAND_BENCH_TOLERANCE` or 0.20.
pub fn tolerance_from_env() -> f64 {
    std::env::var("QUICSAND_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && (0.0..1.0).contains(t))
        .unwrap_or(0.20)
}

/// Converts a stage-walltime histogram's quantile (microseconds) to
/// milliseconds for a report latency map; absent histograms (no
/// observations) record 0.
pub fn quantile_ms(histogram: &quicsand_obs::Histogram, q: f64) -> f64 {
    histogram.quantile(q).map_or(0.0, |micros| micros / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        let mut p50 = BTreeMap::new();
        let mut p99 = BTreeMap::new();
        p50.insert("ingest".into(), 1.5);
        p99.insert("ingest".into(), 4.0);
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            name: "unit".into(),
            scale: "test".into(),
            records: 1_000,
            wall_seconds: 0.5,
            throughput_rps: 2_000.0,
            p50_stage_latency_ms: p50,
            p99_stage_latency_ms: p99,
            peak_sessions: 40,
            threads: 1,
        }
    }

    #[test]
    fn valid_report_round_trips() {
        let r = report();
        r.validate().expect("valid");
        let parsed: BenchReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut r = report();
        r.schema_version = 99;
        r.throughput_rps = f64::NAN;
        r.p50_stage_latency_ms.insert("ingest".into(), 9.0); // > p99
        let errors = r.validate().unwrap_err();
        assert_eq!(errors.len(), 3, "{errors:?}");
    }

    #[test]
    fn compare_gates_throughput_and_peak() {
        let baseline = report();
        let mut current = report();
        current.throughput_rps = 1_500.0; // -25%
        current.peak_sessions = 60; // +50%
        let errors = BenchReport::compare(&baseline, &current, 0.20).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
        // Inside tolerance passes; faster/smaller always passes.
        current.throughput_rps = 1_700.0;
        current.peak_sessions = 48;
        BenchReport::compare(&baseline, &current, 0.20).expect("within tolerance");
        current.throughput_rps = 9_999.0;
        current.peak_sessions = 1;
        BenchReport::compare(&baseline, &current, 0.20).expect("improvement");
    }

    #[test]
    fn file_names_route_per_scale() {
        let mut r = report();
        assert_eq!(r.file_name(), "BENCH_unit.json");
        r.scale = "medium".into();
        assert_eq!(r.file_name(), "BENCH_unit@medium.json");
        assert_eq!(scaled_file_name("unit", "large"), "BENCH_unit@large.json");
        assert_eq!(scaled_file_name("unit", "test"), "BENCH_unit.json");
    }

    #[test]
    fn mismatched_names_do_not_compare() {
        let baseline = report();
        let mut current = report();
        current.name = "other".into();
        assert!(BenchReport::compare(&baseline, &current, 0.2).is_err());
    }
}
