//! # quicsand-bench
//!
//! Experiment regeneration harness: one binary per paper table/figure
//! (see `src/bin/`) plus Criterion performance benches (see
//! `benches/`).
//!
//! Every binary accepts the `QUICSAND_SCALE` environment variable:
//!
//! * `test` — seconds; the unit-test preset (tiny counts).
//! * `demo` — the default; tens of seconds; attack counts large enough
//!   for stable distribution shapes.
//! * `paper` — the full April-2021 preset (exact paper event counts,
//!   documented sub-samples for the two bulk components); minutes.
//!
//! `cargo run --release -p quicsand-bench --bin all_experiments`
//! regenerates every artifact and rewrites `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{scaled_file_name, tolerance_from_env, BenchReport, BENCH_SCHEMA_VERSION};

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_traffic::{Scenario, ScenarioConfig};

/// The scale selected via `QUICSAND_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test preset.
    Test,
    /// Default demo preset.
    Demo,
    /// Full paper preset.
    Paper,
}

impl Scale {
    /// Reads the scale from the environment (default: demo).
    pub fn from_env() -> Scale {
        match std::env::var("QUICSAND_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            Ok("paper") => Scale::Paper,
            _ => Scale::Demo,
        }
    }

    /// The scenario configuration for this scale.
    pub fn scenario_config(self) -> ScenarioConfig {
        match self {
            Scale::Test => ScenarioConfig::test(),
            Scale::Paper => ScenarioConfig::paper_month(),
            Scale::Demo => demo_config(),
        }
    }

    /// The Table 1 request-count scale factor for this scale.
    pub fn tab01_factor(self) -> f64 {
        match self {
            Scale::Test => 0.02,
            // The saturation mechanics need the paper's full run
            // lengths (the 60 s state hold only bites after the table
            // fills); full Table 1 takes ~80 s in release.
            Scale::Demo => 1.0,
            Scale::Paper => 1.0,
        }
    }

    /// Label for report notes.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Demo => "demo",
            Scale::Paper => "paper",
        }
    }
}

/// The perf-ladder tier selected via `QUICSAND_BENCH_SCALE`
/// (netbench-style: `test|medium|large`), orthogonal to the scenario
/// [`Scale`]: `test` replays the materialized test scenario, while
/// `medium` and `large` *stream* synthetic records through the
/// pipeline without ever materializing the trace
/// ([`quicsand_traffic::RecordStream`]), so memory stays constant at
/// any record count. Each tier writes its own baseline file
/// (`BENCH_<name>@<scale>.json`) and `bench_compare` gates tiers
/// independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchScale {
    /// Materialized test-scenario replay (the default; CI bench-smoke).
    Test,
    /// 1M streamed records (CI scale-smoke).
    Medium,
    /// 10M streamed records (manual / nightly).
    Large,
}

impl BenchScale {
    /// Reads the tier from the environment (default: test).
    pub fn from_env() -> BenchScale {
        match std::env::var("QUICSAND_BENCH_SCALE").as_deref() {
            Ok("medium") => BenchScale::Medium,
            Ok("large") => BenchScale::Large,
            _ => BenchScale::Test,
        }
    }

    /// Streamed records at this tier; `None` means "replay the
    /// materialized scenario instead".
    pub fn stream_records(self) -> Option<u64> {
        match self {
            BenchScale::Test => None,
            BenchScale::Medium => Some(1_000_000),
            BenchScale::Large => Some(10_000_000),
        }
    }

    /// The streaming generator configuration for this tier (its victim
    /// pool — and so the generator's memory — is fixed regardless of
    /// the record count).
    pub fn stream_config(self) -> Option<quicsand_traffic::StreamConfig> {
        self.stream_records()
            .map(|records| quicsand_traffic::StreamConfig::new(0x5CA1_E000, records, 64))
    }

    /// Label for `BenchReport.scale` and per-tier baseline routing.
    pub fn label(self) -> &'static str {
        match self {
            BenchScale::Test => "test",
            BenchScale::Medium => "medium",
            BenchScale::Large => "large",
        }
    }
}

/// The demo preset: 30 days like the paper, event counts reduced ~4x,
/// distribution parameters identical.
pub fn demo_config() -> ScenarioConfig {
    ScenarioConfig {
        seed: 0x2021_0401,
        days: 30,
        research_scans_per_project: 6,
        research_packets_per_scan: 25_000,
        research_scan_duration_hours: 10,
        request_sessions: 5_000,
        quic_attacks: 800,
        victim_pool: 110,
        common_attacks: 2_400,
        misconfig_sessions: 2_000,
        garbage_udp443_packets: 500,
        ..ScenarioConfig::paper_month()
    }
}

/// Generates the scenario and runs the analysis for the ambient scale,
/// printing progress to stderr.
pub fn prepare() -> (Scale, Scenario, Analysis) {
    let scale = Scale::from_env();
    eprintln!(
        "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
        scale.label()
    );
    let t0 = std::time::Instant::now();
    let scenario = Scenario::generate(&scale.scenario_config());
    eprintln!(
        "[quicsand] {} records generated in {:.1?}; running analysis pipeline",
        scenario.records.len(),
        t0.elapsed()
    );
    let t1 = std::time::Instant::now();
    let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
    eprintln!(
        "[quicsand] analysis done in {:.1?}: {} QUIC attacks, {} common attacks",
        t1.elapsed(),
        analysis.quic_attacks.len(),
        analysis.common_attacks.len()
    );
    (scale, scenario, analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_config_is_valid_and_month_long() {
        let c = demo_config();
        c.validate();
        assert_eq!(c.days, 30);
        assert_eq!(c.quic_duration_median_secs, 255.0);
    }

    #[test]
    fn bench_scale_tiers_stream_constant_victims() {
        assert_eq!(BenchScale::Test.stream_records(), None);
        assert!(BenchScale::Test.stream_config().is_none());
        let medium = BenchScale::Medium.stream_config().unwrap();
        let large = BenchScale::Large.stream_config().unwrap();
        assert_eq!(medium.records, 1_000_000);
        assert_eq!(large.records, 10_000_000);
        // 10x the records, identical memory footprint.
        assert_eq!(medium.victims, large.victims);
        assert_eq!(BenchScale::Medium.label(), "medium");
    }

    #[test]
    fn scale_parsing_defaults_to_demo() {
        // Environment-independent check of the mapping.
        assert_eq!(Scale::Test.scenario_config(), ScenarioConfig::test());
        assert_eq!(
            Scale::Paper.scenario_config(),
            ScenarioConfig::paper_month()
        );
        assert_eq!(Scale::Demo.scenario_config(), demo_config());
        assert!(Scale::Paper.tab01_factor() == 1.0);
    }
}
