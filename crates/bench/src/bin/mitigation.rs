//! Runs the mitigation-strategy comparison (Â§5.2 deployability
//! insight).

fn main() {
    eprintln!("[quicsand] evaluating ingress filters against floods");
    let report = quicsand_core::experiments::mitigation::run();
    println!("{}", report.render());
}
