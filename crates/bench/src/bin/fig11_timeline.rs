//! Regenerates Fig. 11 (Appendix C): single-victim attack timeline.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig11::run(&analysis);
    println!("{}", report.render());
}
