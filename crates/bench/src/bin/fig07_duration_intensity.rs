//! Regenerates Fig. 7: flood duration and intensity CDFs, QUIC vs
//! TCP/ICMP.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig07::run(&analysis);
    println!("{}", report.render());
}
