//! Regenerates the §3 amplification-factor comparison.

fn main() {
    let report = quicsand_core::experiments::sec3_amplification::run();
    println!("{}", report.render());
}
