//! Regenerates Fig. 10 (Appendix B): DoS threshold weight sweep.

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig10::run(&scenario, &analysis);
    println!("{}", report.render());
}
