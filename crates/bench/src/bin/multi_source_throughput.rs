//! Throughput of the multi-source ingestion tier, at any rung of the
//! perf scale ladder (`QUICSAND_BENCH_SCALE`, default `test`):
//!
//! * `test` (and any `QUICSAND_SCALE`) — the materialized scenario
//!   trace is round-robin split across in-memory feeds.
//! * `medium` / `large` — 1M / 10M records flow from the
//!   constant-memory streaming generator, entity-sharded into feeds;
//!   the trace is never materialized.
//!
//! ```text
//! cargo run --release -p quicsand-bench --bin multi_source_throughput
//! ```
//!
//! Prints records/second through the full multiplexed path (bounded
//! per-source queues → batched transfer → run-based event-time merge →
//! ingest guard → alert lifecycle) and the fan-in overhead versus a
//! single feed. When `QUICSAND_MULTI_RATIO_MAX` is set (CI
//! `scale-smoke` sets 1.5), the run fails if the 4-source wall time
//! exceeds that multiple of the single-source wall time.
//!
//! Afterwards it writes the per-tier report (`BENCH_multi_source.json`
//! at the `test` tier, `BENCH_multi_source@<scale>.json` above it; the
//! 4-source, 1-shard, 4096-chunk, default-queue run is the
//! machine-portable reference configuration) into `QUICSAND_BENCH_DIR`
//! for the `scripts/ci.sh` regression gates.

use quicsand_bench::report::quantile_ms;
use quicsand_bench::{BenchReport, BenchScale, Scale, BENCH_SCHEMA_VERSION};
use quicsand_live::{LiveConfig, MultiSourceLive};
use quicsand_net::multi::{memory_factory, DynSource, SourceFactory, SourceSet, SourceSetConfig};
use quicsand_net::PacketRecord;
use quicsand_sessions::SessionConfig;
use quicsand_telescope::GuardConfig;
use quicsand_traffic::RecordStream;
use std::collections::BTreeMap;
use std::time::Instant;

fn splits(records: &[PacketRecord], n: usize) -> Vec<Vec<PacketRecord>> {
    let mut parts = vec![Vec::new(); n];
    for (i, record) in records.iter().enumerate() {
        parts[i % n].push(record.clone());
    }
    parts
}

const CHUNK: usize = 4096;

/// Builds the per-feed factories for a given source count.
type FeedBuilder = Box<dyn Fn(usize) -> Vec<Box<dyn SourceFactory>>>;

fn ratio_max_from_env() -> Option<f64> {
    std::env::var("QUICSAND_MULTI_RATIO_MAX")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|r| r.is_finite() && *r >= 1.0)
}

fn main() {
    let bench_scale = BenchScale::from_env();
    let scale = Scale::from_env();

    // The feed builder and the total record count, per ladder tier.
    let (total, feeds_for, report_scale): (u64, FeedBuilder, &str) = match bench_scale
        .stream_config()
    {
        // Streaming tiers: entity-sharded constant-memory generators.
        Some(stream) => {
            eprintln!(
                "[quicsand] streaming {} records ({} tier), never materialized",
                stream.records,
                bench_scale.label()
            );
            let feeds = move |sources: usize| -> Vec<Box<dyn SourceFactory>> {
                (0..sources)
                    .map(|index| {
                        let shard = stream.shard(sources as u32, index as u32);
                        Box::new(move || Ok(Box::new(RecordStream::new(&shard)) as DynSource))
                            as Box<dyn SourceFactory>
                    })
                    .collect()
            };
            (stream.records, Box::new(feeds), bench_scale.label())
        }
        // Test tier: the materialized scenario, round-robin split.
        None => {
            eprintln!(
                "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
                scale.label()
            );
            let scenario = quicsand_traffic::Scenario::generate(&scale.scenario_config());
            let records = scenario.records;
            let total = records.len() as u64;
            let feeds = move |sources: usize| -> Vec<Box<dyn SourceFactory>> {
                splits(&records, sources)
                    .into_iter()
                    .map(|p| Box::new(memory_factory(p)) as Box<dyn SourceFactory>)
                    .collect()
            };
            (total, Box::new(feeds), scale.label())
        }
    };

    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };

    println!(
        "multiplexed live engine over {total} records ({report_scale} tier), {} cores available",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>7} {:>7}  {:>10} {:>12} {:>8} {:>8} {:>8}",
        "sources", "queue", "wall", "rec/s", "events", "peak", "speedup"
    );

    let run = |sources: usize, queue: usize, base: f64| -> (f64, MultiSourceLive) {
        let set_config = SourceSetConfig {
            queue_capacity: queue,
            ..SourceSetConfig::default()
        };
        let set = SourceSet::spawn(feeds_for(sources), &set_config);
        let mut live = MultiSourceLive::new(config, guard, 1, set);
        let t0 = Instant::now();
        let mut events = 0usize;
        while let Some(batch) = live.pump(CHUNK) {
            events += batch.len();
        }
        events += live.finish().len();
        let wall = t0.elapsed().as_secs_f64();
        let stats = live.live_stats();
        assert!(stats.closed > 0, "the trace must close at least one alert");
        assert_eq!(
            live.offered(),
            total,
            "the merge must conserve every record"
        );
        println!(
            "{sources:>7} {queue:>7}  {:>9.2}s {:>12.0} {events:>8} {:>8} {:>7.2}x",
            wall,
            total as f64 / wall,
            stats.peak_tracked,
            if base > 0.0 { base / wall } else { 1.0 },
        );
        (wall, live)
    };

    let default_queue = SourceSetConfig::default().queue_capacity;
    let mut base = 0.0f64;
    let mut reference: Option<(f64, MultiSourceLive)> = None;
    for sources in [1usize, 2, 4, 8] {
        let (wall, live) = run(sources, default_queue, base);
        if sources == 1 {
            base = wall;
        }
        if sources == 4 {
            reference = Some((wall, live));
        }
    }
    // The queue-capacity sweep only makes sense where runs are cheap.
    if bench_scale == BenchScale::Test {
        for queue in [64usize, 512] {
            run(4, queue, base);
        }
    }

    let (wall, mut live) = reference.expect("4-source run always executes");
    if let Some(max_ratio) = ratio_max_from_env() {
        let ratio = wall / base;
        assert!(
            ratio <= max_ratio,
            "fan-in tax too high: 4-source wall {wall:.2}s is {ratio:.2}x \
             single-source {base:.2}s (max allowed {max_ratio:.2}x)"
        );
        eprintln!("[quicsand] fan-in ratio {ratio:.2}x <= {max_ratio:.2}x — ok");
    }

    // Regression-gate report from the 4-source, 1-shard reference run.
    live.verify_metrics()
        .expect("multiplexed metrics reconcile at end of run");
    let stages = live.engine().stage_metrics();
    let stage_map = |q: f64| -> BTreeMap<String, f64> {
        [
            ("ingest", &stages.ingest_walltime),
            ("sessionize", &stages.sessionize_walltime),
            ("detect", &stages.detect_walltime),
        ]
        .into_iter()
        .map(|(stage, histogram)| (stage.to_string(), quantile_ms(histogram, q)))
        .collect()
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: "multi_source".into(),
        scale: report_scale.into(),
        records: total,
        wall_seconds: wall,
        throughput_rps: total as f64 / wall,
        p50_stage_latency_ms: stage_map(0.50),
        p99_stage_latency_ms: stage_map(0.99),
        peak_sessions: live.live_stats().peak_tracked as u64,
        threads: 1,
    };
    report.validate().expect("fresh report is schema-valid");
    let path = report.write().expect("write bench report");
    eprintln!("[quicsand] bench report written to {}", path.display());
}
