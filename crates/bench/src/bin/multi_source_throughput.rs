//! Throughput of the multi-source ingestion tier on the ambient scale
//! (`QUICSAND_SCALE`, default demo): the scenario trace is round-robin
//! split across in-memory feeds and pumped through the [`SourceSet`]
//! multiplexer into the live engine, across source counts and a queue
//! capacity sweep at the reference source count.
//!
//! ```text
//! cargo run --release -p quicsand-bench --bin multi_source_throughput
//! ```
//!
//! Prints records/second through the full multiplexed path (bounded
//! per-source queues → event-time merge → ingest guard → alert
//! lifecycle) and the merge overhead versus a single pre-merged feed.
//!
//! Afterwards it writes `BENCH_multi_source.json` (the 4-source,
//! 1-shard, 4096-chunk, default-queue run — the machine-portable
//! reference configuration) into `QUICSAND_BENCH_DIR` for the
//! `scripts/ci.sh bench-smoke` regression gate.

use quicsand_bench::report::quantile_ms;
use quicsand_bench::{BenchReport, Scale, BENCH_SCHEMA_VERSION};
use quicsand_live::{LiveConfig, MultiSourceLive};
use quicsand_net::multi::{memory_factory, SourceFactory, SourceSet, SourceSetConfig};
use quicsand_net::PacketRecord;
use quicsand_sessions::SessionConfig;
use quicsand_telescope::GuardConfig;
use std::collections::BTreeMap;
use std::time::Instant;

fn splits(records: &[PacketRecord], n: usize) -> Vec<Vec<PacketRecord>> {
    let mut parts = vec![Vec::new(); n];
    for (i, record) in records.iter().enumerate() {
        parts[i % n].push(record.clone());
    }
    parts
}

fn factories(parts: &[Vec<PacketRecord>]) -> Vec<Box<dyn SourceFactory>> {
    parts
        .iter()
        .map(|p| Box::new(memory_factory(p.clone())) as Box<dyn SourceFactory>)
        .collect()
}

const CHUNK: usize = 4096;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
        scale.label()
    );
    let scenario = quicsand_traffic::Scenario::generate(&scale.scenario_config());
    let records = &scenario.records;
    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };

    println!(
        "multiplexed live engine over {} records ({} scale), {} cores available",
        records.len(),
        scale.label(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>7} {:>7}  {:>10} {:>12} {:>8} {:>8} {:>8}",
        "sources", "queue", "wall", "rec/s", "events", "peak", "speedup"
    );

    let run = |sources: usize, queue: usize, base: f64| -> (f64, MultiSourceLive) {
        let parts = splits(records, sources);
        let set_config = SourceSetConfig {
            queue_capacity: queue,
            ..SourceSetConfig::default()
        };
        let set = SourceSet::spawn(factories(&parts), &set_config);
        let mut live = MultiSourceLive::new(config, guard, 1, set);
        let t0 = Instant::now();
        let mut events = 0usize;
        while let Some(batch) = live.pump(CHUNK) {
            events += batch.len();
        }
        events += live.finish().len();
        let wall = t0.elapsed().as_secs_f64();
        let stats = live.live_stats();
        assert!(
            stats.closed > 0,
            "the scenario must close at least one alert"
        );
        assert_eq!(
            live.offered(),
            records.len() as u64,
            "the merge must conserve every record"
        );
        println!(
            "{sources:>7} {queue:>7}  {:>9.2}s {:>12.0} {events:>8} {:>8} {:>7.2}x",
            wall,
            records.len() as f64 / wall,
            stats.peak_tracked,
            if base > 0.0 { base / wall } else { 1.0 },
        );
        (wall, live)
    };

    let default_queue = SourceSetConfig::default().queue_capacity;
    let mut base = 0.0f64;
    let mut reference: Option<(f64, MultiSourceLive)> = None;
    for sources in [1usize, 2, 4, 8] {
        let (wall, live) = run(sources, default_queue, base);
        if sources == 1 {
            base = wall;
        }
        if sources == 4 {
            reference = Some((wall, live));
        }
    }
    for queue in [64usize, 512] {
        run(4, queue, base);
    }

    // Regression-gate report from the 4-source, 1-shard reference run.
    let (wall, mut live) = reference.expect("4-source run always executes");
    live.verify_metrics()
        .expect("multiplexed metrics reconcile at end of run");
    let stages = live.engine().stage_metrics();
    let stage_map = |q: f64| -> BTreeMap<String, f64> {
        [
            ("ingest", &stages.ingest_walltime),
            ("sessionize", &stages.sessionize_walltime),
            ("detect", &stages.detect_walltime),
        ]
        .into_iter()
        .map(|(stage, histogram)| (stage.to_string(), quantile_ms(histogram, q)))
        .collect()
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: "multi_source".into(),
        scale: scale.label().into(),
        records: records.len() as u64,
        wall_seconds: wall,
        throughput_rps: records.len() as f64 / wall,
        p50_stage_latency_ms: stage_map(0.50),
        p99_stage_latency_ms: stage_map(0.99),
        peak_sessions: live.live_stats().peak_tracked as u64,
        threads: 1,
    };
    report.validate().expect("fresh report is schema-valid");
    let path = report.write().expect("write bench report");
    eprintln!("[quicsand] bench report written to {}", path.display());
}
