//! Runs the adaptive-RETRY extension experiment (§6 proposal).

fn main() {
    eprintln!("[quicsand] sweeping retry policies across flood rates (~1 min)");
    let report = quicsand_core::experiments::adaptive_retry::run();
    println!("{}", report.render());
}
