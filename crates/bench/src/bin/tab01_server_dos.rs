//! Regenerates Table 1: local server DoS resiliency with/without RETRY.
//!
//! Independent of the telescope scenario; respects QUICSAND_SCALE for
//! the replay request counts (rates are always the paper's).

fn main() {
    let scale = quicsand_bench::Scale::from_env();
    eprintln!(
        "[quicsand] replaying Table 1 rows (scale={}, request factor {})",
        scale.label(),
        scale.tab01_factor()
    );
    let report = quicsand_core::experiments::tab01::run_scaled(scale.tab01_factor());
    println!("{}", report.render());
}
