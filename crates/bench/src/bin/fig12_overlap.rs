//! Regenerates Fig. 12 (Appendix C): overlap CDF of concurrent attacks.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig12::run(&analysis);
    println!("{}", report.render());
}
