//! Regenerates Fig. 2: research scanner bias in QUIC IBR.

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig02::run(&scenario, &analysis);
    println!("{}", report.render());
}
