//! Regenerates Fig. 5: source network types of sessions.

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig05::run(&scenario, &analysis);
    println!("{}", report.render());
}
