//! Regenerates Fig. 8: multi-vector attack shares.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig08::run(&analysis);
    println!("{}", report.render());
}
