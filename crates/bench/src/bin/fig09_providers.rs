//! Regenerates Fig. 9: per-provider attack properties.

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig09::run(&scenario, &analysis);
    println!("{}", report.render());
}
