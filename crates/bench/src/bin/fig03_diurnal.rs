//! Regenerates Fig. 3: requests vs responses per hour, diurnal peaks.

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig03::run(&scenario, &analysis);
    println!("{}", report.render());
}
