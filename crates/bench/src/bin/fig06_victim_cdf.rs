//! Regenerates Fig. 6: CDF of attacks per QUIC flood victim.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig06::run(&analysis);
    println!("{}", report.render());
}
