//! Validates `BENCH_*.json` reports and gates performance regressions.
//!
//! ```text
//! bench_compare --validate FILE [FILE...]
//! bench_compare --baseline BENCH_x.json --current fresh.json [--tolerance 0.2]
//!               [--ingest-floor-rps N]
//! ```
//!
//! Exit status is non-zero on schema violations or regressions beyond
//! the tolerance (default 20%, `QUICSAND_BENCH_TOLERANCE` overridable).
//! `--ingest-floor-rps` additionally enforces an absolute floor on the
//! ingest-stage throughput implied by the *current* report (records /
//! median ingest walltime) — the zero-copy decode path must not slide
//! back toward the per-record copying numbers no matter what the
//! relative tolerance would forgive. See `quicsand_bench::report` for
//! the gating policy.
//!
//! Baselines are per scale tier: when `--baseline` names a file from a
//! different tier than the current report, the comparison is routed to
//! the `BENCH_<name>@<scale>.json` sibling for the current tier.

use quicsand_bench::{scaled_file_name, tolerance_from_env, BenchReport};
use std::path::Path;
use std::process::ExitCode;

/// Resolves the baseline actually comparable to `current`: when the
/// named baseline was recorded at a different scale tier, the
/// comparison is routed to the per-tier sibling file
/// (`BENCH_<name>@<scale>.json` next to the named baseline) instead of
/// erroring on the scale mismatch.
fn route_baseline(named: &Path, current: &BenchReport) -> Result<BenchReport, String> {
    let baseline = BenchReport::load(named)?;
    if baseline.scale == current.scale {
        return Ok(baseline);
    }
    let sibling = named
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join(scaled_file_name(&baseline.name, &current.scale));
    if !sibling.exists() {
        return Err(format!(
            "baseline `{}` is scale `{}` but the current report is scale `{}`, \
             and no per-tier baseline `{}` exists",
            named.display(),
            baseline.scale,
            current.scale,
            sibling.display()
        ));
    }
    eprintln!(
        "scale `{}` != baseline scale `{}`: routing to {}",
        current.scale,
        baseline.scale,
        sibling.display()
    );
    BenchReport::load(&sibling)
}

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let files = &args[i + 1..];
        if files.is_empty() {
            return Err("--validate requires at least one file".into());
        }
        for file in files {
            let report = BenchReport::load(Path::new(file))?;
            eprintln!(
                "{file}: ok ({}, {} records, {:.0} rec/s)",
                report.name, report.records, report.throughput_rps
            );
        }
        return Ok(format!("validated {} report(s)", files.len()));
    }

    let value = |name: &str| -> Result<Option<&String>, String> {
        match args.iter().position(|a| a == name) {
            Some(i) => args
                .get(i + 1)
                .ok_or(format!("{name} is missing its value"))
                .map(Some),
            None => Ok(None),
        }
    };
    let baseline = value("--baseline")?.ok_or(
        "usage: bench_compare --validate FILE... | --baseline B --current C [--tolerance T]",
    )?;
    let current = value("--current")?.ok_or("--baseline requires --current")?;
    let tolerance = match value("--tolerance")? {
        Some(t) => t
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && (0.0..1.0).contains(t))
            .ok_or(format!("invalid --tolerance `{t}` (want 0.0 <= t < 1.0)"))?,
        None => tolerance_from_env(),
    };

    let ingest_floor = match value("--ingest-floor-rps")? {
        Some(f) => Some(
            f.parse::<f64>()
                .ok()
                .filter(|f| f.is_finite() && *f > 0.0)
                .ok_or(format!("invalid --ingest-floor-rps `{f}`"))?,
        ),
        None => None,
    };

    let current = BenchReport::load(Path::new(current))?;
    let baseline = route_baseline(Path::new(baseline), &current)?;
    BenchReport::compare(&baseline, &current, tolerance).map_err(|errors| {
        format!(
            "`{}` regressed beyond {:.0}% tolerance:\n  {}",
            current.name,
            tolerance * 100.0,
            errors.join("\n  ")
        )
    })?;
    if let Some(floor) = ingest_floor {
        let rps = current
            .ingest_stage_rps()
            .ok_or("--ingest-floor-rps given but the current report has no ingest-stage sample")?;
        if rps < floor {
            return Err(format!(
                "ingest-stage floor violated: {rps:.0} rec/s < required {floor:.0} \
                 (median ingest walltime {:.1} ms over {} records)",
                current.p50_stage_latency_ms["ingest"], current.records
            ));
        }
        eprintln!("ingest-stage floor: {rps:.0} rec/s >= {floor:.0} — ok");
    }
    Ok(format!(
        "{}: ok — {:.0} rec/s vs baseline {:.0} ({:+.1}%), peak {} vs {} (tolerance {:.0}%)",
        current.name,
        current.throughput_rps,
        baseline.throughput_rps,
        100.0 * (current.throughput_rps / baseline.throughput_rps - 1.0),
        current.peak_sessions,
        baseline.peak_sessions,
        tolerance * 100.0
    ))
}
