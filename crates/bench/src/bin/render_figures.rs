//! Renders every figure as SVG into `figures/` (or the directory in
//! `QUICSAND_FIGURES_DIR`).

use quicsand_core::experiments::figures;
use quicsand_core::plot::render_svg;

fn main() {
    let (_, scenario, analysis) = quicsand_bench::prepare();
    let dir = std::env::var("QUICSAND_FIGURES_DIR").unwrap_or_else(|_| "figures".to_string());
    std::fs::create_dir_all(&dir).expect("create figures dir");
    for (stem, spec) in figures::all(&scenario, &analysis) {
        let path = format!("{dir}/{stem}.svg");
        std::fs::write(&path, render_svg(&spec)).expect("write svg");
        eprintln!("[quicsand] wrote {path}");
    }
}
