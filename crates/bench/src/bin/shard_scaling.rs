//! Scaling curve of the sharded frontend: ingest + sessionize
//! throughput at 1, 2, 4 and 8 shards on the ambient scale
//! (`QUICSAND_SCALE`, default demo).
//!
//! ```text
//! cargo run --release -p quicsand-bench --bin shard_scaling
//! ```
//!
//! Prints, per thread count, the wall time and throughput of (a) the
//! parallel ingest alone and (b) the full analysis frontend
//! (ingest → sanitize → sessionize → DoS inference), plus the speedup
//! over one shard. The acceptance bar for the parallel pipeline is
//! ≥ 2× ingest+sessionize throughput at 8 shards vs 1 at demo scale.
//!
//! Afterwards it writes `BENCH_shard_scaling.json` (the 1-thread run —
//! the machine-portable reference configuration) into
//! `QUICSAND_BENCH_DIR` for the `scripts/ci.sh bench-smoke` regression
//! gate.
//!
//! At the `medium`/`large` rungs of `QUICSAND_BENCH_SCALE`, the batch
//! frontend (which needs a materialized trace) is replaced by the live
//! engine fed from the constant-memory streaming generator, and the
//! per-tier report lands in `BENCH_shard_scaling@<scale>.json`.

use quicsand_bench::report::quantile_ms;
use quicsand_bench::{BenchReport, BenchScale, Scale, BENCH_SCHEMA_VERSION};
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_live::{LiveConfig, LiveEngine};
use quicsand_net::PacketRecord;
use quicsand_sessions::SessionConfig;
use quicsand_telescope::{ingest_parallel, GuardConfig};
use quicsand_traffic::{RecordStream, Scenario, StreamConfig};
use std::collections::BTreeMap;
use std::time::Instant;

/// The streaming rungs: shard counts over lazily generated records,
/// reusing one chunk buffer so memory stays O(victims + chunk).
fn run_streaming(bench_scale: BenchScale, stream: StreamConfig) {
    const CHUNK: usize = 4096;
    eprintln!(
        "[quicsand] streaming {} records ({} tier), never materialized",
        stream.records,
        bench_scale.label()
    );
    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };
    println!(
        "shard scaling over {} streamed records ({} tier), {} cores available",
        stream.records,
        bench_scale.label(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>7}  {:>12} {:>12} {:>8}",
        "shards", "wall", "rec/s", "speedup"
    );
    let mut base = 0.0f64;
    let mut reference: Option<(f64, LiveEngine)> = None;
    for shards in [1usize, 2, 4, 8] {
        let mut source = RecordStream::new(&stream);
        let mut engine = LiveEngine::new(config, guard, shards);
        let mut buf: Vec<PacketRecord> = Vec::with_capacity(CHUNK);
        let t0 = Instant::now();
        loop {
            buf.clear();
            buf.extend(source.by_ref().take(CHUNK));
            if buf.is_empty() {
                break;
            }
            engine.offer_chunk(&buf);
        }
        engine.finish();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(engine.offered(), stream.records, "stream conserves records");
        assert!(engine.live_stats().closed > 0, "bursts close alerts");
        if shards == 1 {
            base = wall;
            reference = Some((wall, engine));
        }
        println!(
            "{shards:>7}  {:>10.2}s {:>12.0} {:>7.2}x",
            wall,
            stream.records as f64 / wall,
            base / wall,
        );
    }

    let (wall, mut engine) = reference.expect("1-shard run always executes");
    engine
        .verify_metrics()
        .expect("metrics reconcile at end of run");
    let stages = engine.stage_metrics();
    let stage_map = |q: f64| -> BTreeMap<String, f64> {
        [
            ("ingest", &stages.ingest_walltime),
            ("sessionize", &stages.sessionize_walltime),
            ("detect", &stages.detect_walltime),
        ]
        .into_iter()
        .map(|(stage, histogram)| (stage.to_string(), quantile_ms(histogram, q)))
        .collect()
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: "shard_scaling".into(),
        scale: bench_scale.label().into(),
        records: stream.records,
        wall_seconds: wall,
        throughput_rps: stream.records as f64 / wall,
        p50_stage_latency_ms: stage_map(0.50),
        p99_stage_latency_ms: stage_map(0.99),
        peak_sessions: engine.live_stats().peak_tracked as u64,
        threads: 1,
    };
    report.validate().expect("fresh report is schema-valid");
    let path = report.write().expect("write bench report");
    eprintln!("[quicsand] bench report written to {}", path.display());
}

fn main() {
    let bench_scale = BenchScale::from_env();
    if let Some(stream) = bench_scale.stream_config() {
        run_streaming(bench_scale, stream);
        return;
    }
    let scale = Scale::from_env();
    eprintln!(
        "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
        scale.label()
    );
    let scenario = Scenario::generate(&scale.scenario_config());
    let records = &scenario.records;
    println!(
        "shard scaling over {} records ({} scale), {} cores available",
        records.len(),
        scale.label(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    if std::thread::available_parallelism().map_or(1, usize::from) == 1 {
        println!(
            "note: single-core host — expect ~1x at every shard count; \
             the scaling target (>=2x at 8 shards) needs >=8 cores"
        );
    }
    println!(
        "{:>7}  {:>12} {:>12} {:>8}  {:>12} {:>12} {:>8}",
        "shards", "ingest", "rec/s", "speedup", "frontend", "rec/s", "speedup"
    );

    let mut ingest_base = 0.0f64;
    let mut frontend_base = 0.0f64;
    let mut reference: Option<(f64, Analysis)> = None;
    for threads in [1usize, 2, 4, 8] {
        // (a) Parallel ingest alone (classify + dissect).
        let t0 = Instant::now();
        let (quic, baseline, stats) = ingest_parallel(records, threads);
        let ingest_s = t0.elapsed().as_secs_f64();
        assert_eq!(stats.total, records.len() as u64);
        // Keep the products observable so the work is not optimized out.
        let sink = quic.len() + baseline.len();
        assert!(sink > 0);

        // (b) The full pipeline with the sharded frontend.
        let t1 = Instant::now();
        let analysis = Analysis::run(
            &scenario,
            &AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            },
        );
        let frontend_s = t1.elapsed().as_secs_f64();
        assert!(!analysis.quic_attacks.is_empty());

        if threads == 1 {
            ingest_base = ingest_s;
            frontend_base = frontend_s;
            reference = Some((frontend_s, analysis));
        } else {
            drop(analysis);
        }
        println!(
            "{threads:>7}  {:>10.2}s {:>12.0} {:>7.2}x  {:>10.2}s {:>12.0} {:>7.2}x",
            ingest_s,
            records.len() as f64 / ingest_s,
            ingest_base / ingest_s,
            frontend_s,
            records.len() as f64 / frontend_s,
            frontend_base / frontend_s,
        );
    }

    // Regression-gate report from the 1-thread reference run.
    let (wall, analysis) = reference.expect("1-thread run always executes");
    let stages = &analysis.metrics.stages;
    let stage_map = |q: f64| -> BTreeMap<String, f64> {
        [
            ("ingest", &stages.ingest_walltime),
            ("sanitize", &stages.sanitize_walltime),
            ("sessionize", &stages.sessionize_walltime),
            ("detect", &stages.detect_walltime),
        ]
        .into_iter()
        .map(|(stage, histogram)| (stage.to_string(), quantile_ms(histogram, q)))
        .collect()
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: "shard_scaling".into(),
        scale: scale.label().into(),
        records: records.len() as u64,
        wall_seconds: wall,
        throughput_rps: records.len() as f64 / wall,
        p50_stage_latency_ms: stage_map(0.50),
        p99_stage_latency_ms: stage_map(0.99),
        peak_sessions: analysis.stats.peak_open_sessions as u64,
        threads: 1,
    };
    report.validate().expect("fresh report is schema-valid");
    let path = report.write().expect("write bench report");
    eprintln!("[quicsand] bench report written to {}", path.display());
}
