//! Regenerates the §6 message-mix/RETRY analysis.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::msgmix::run(&analysis);
    println!("{}", report.render());
}
