//! Throughput of the streaming flood-detection engine on the ambient
//! scale (`QUICSAND_SCALE`, default demo), across shard counts and a
//! sweep of chunk sizes at the best shard count.
//!
//! ```text
//! cargo run --release -p quicsand-bench --bin live_throughput
//! ```
//!
//! Prints records/second through the full live path (ingest guard →
//! per-victim state → alert lifecycle), the event volume, and the peak
//! number of tracked victims — the engine's memory high-water mark.

use quicsand_bench::Scale;
use quicsand_live::{LiveConfig, LiveEngine};
use quicsand_sessions::SessionConfig;
use quicsand_telescope::GuardConfig;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
        scale.label()
    );
    let scenario = quicsand_traffic::Scenario::generate(&scale.scenario_config());
    let records = &scenario.records;
    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };

    println!(
        "live engine over {} records ({} scale), {} cores available",
        records.len(),
        scale.label(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>7} {:>7}  {:>10} {:>12} {:>8} {:>8} {:>8}",
        "shards", "chunk", "wall", "rec/s", "events", "peak", "speedup"
    );

    let mut base = 0.0f64;
    let run = |shards: usize, chunk: usize, base: f64| -> f64 {
        let mut engine = LiveEngine::new(config, guard, shards);
        let t0 = Instant::now();
        let mut events = 0usize;
        for part in records.chunks(chunk) {
            events += engine.offer_chunk(part).len();
        }
        events += engine.finish().len();
        let wall = t0.elapsed().as_secs_f64();
        let stats = engine.live_stats();
        assert!(
            stats.closed > 0,
            "the scenario must close at least one alert"
        );
        println!(
            "{shards:>7} {chunk:>7}  {:>9.2}s {:>12.0} {events:>8} {:>8} {:>7.2}x",
            wall,
            records.len() as f64 / wall,
            stats.peak_tracked,
            if base > 0.0 { base / wall } else { 1.0 },
        );
        wall
    };

    for shards in [1usize, 2, 4, 8] {
        let wall = run(shards, 4096, base);
        if shards == 1 {
            base = wall;
        }
    }
    for chunk in [256usize, 1024, 16_384] {
        run(8, chunk, base);
    }
}
