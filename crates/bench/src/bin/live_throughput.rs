//! Throughput of the streaming flood-detection engine on the ambient
//! scale (`QUICSAND_SCALE`, default demo), across shard counts and a
//! sweep of chunk sizes at the best shard count.
//!
//! ```text
//! cargo run --release -p quicsand-bench --bin live_throughput
//! ```
//!
//! Prints records/second through the full live path (ingest guard →
//! per-victim state → alert lifecycle), the event volume, and the peak
//! number of tracked victims — the engine's memory high-water mark.
//!
//! Afterwards it writes `BENCH_live_throughput.json` (the 1-shard,
//! 4096-chunk run — the machine-portable reference configuration) into
//! `QUICSAND_BENCH_DIR` for the `scripts/ci.sh bench-smoke` regression
//! gate.

use quicsand_bench::report::quantile_ms;
use quicsand_bench::{BenchReport, Scale, BENCH_SCHEMA_VERSION};
use quicsand_live::{LiveConfig, LiveEngine};
use quicsand_sessions::SessionConfig;
use quicsand_telescope::GuardConfig;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "[quicsand] generating scenario (scale={}, set QUICSAND_SCALE=test|demo|paper to change)",
        scale.label()
    );
    let scenario = quicsand_traffic::Scenario::generate(&scale.scenario_config());
    let records = &scenario.records;
    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };

    println!(
        "live engine over {} records ({} scale), {} cores available",
        records.len(),
        scale.label(),
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>7} {:>7}  {:>10} {:>12} {:>8} {:>8} {:>8}",
        "shards", "chunk", "wall", "rec/s", "events", "peak", "speedup"
    );

    let mut base = 0.0f64;
    let run = |shards: usize, chunk: usize, base: f64| -> (f64, LiveEngine) {
        let mut engine = LiveEngine::new(config, guard, shards);
        let t0 = Instant::now();
        let mut events = 0usize;
        for part in records.chunks(chunk) {
            events += engine.offer_chunk(part).len();
        }
        events += engine.finish().len();
        let wall = t0.elapsed().as_secs_f64();
        let stats = engine.live_stats();
        assert!(
            stats.closed > 0,
            "the scenario must close at least one alert"
        );
        println!(
            "{shards:>7} {chunk:>7}  {:>9.2}s {:>12.0} {events:>8} {:>8} {:>7.2}x",
            wall,
            records.len() as f64 / wall,
            stats.peak_tracked,
            if base > 0.0 { base / wall } else { 1.0 },
        );
        (wall, engine)
    };

    let mut reference: Option<(f64, LiveEngine)> = None;
    for shards in [1usize, 2, 4, 8] {
        let (wall, engine) = run(shards, 4096, base);
        if shards == 1 {
            base = wall;
            reference = Some((wall, engine));
        }
    }
    for chunk in [256usize, 1024, 16_384] {
        run(8, chunk, base);
    }

    // Regression-gate report from the 1-shard, 4096-chunk reference run.
    let (wall, mut engine) = reference.expect("1-shard run always executes");
    engine
        .verify_metrics()
        .expect("live metrics reconcile at end of run");
    let stages = engine.stage_metrics();
    let stage_map = |q: f64| -> BTreeMap<String, f64> {
        [
            ("ingest", &stages.ingest_walltime),
            ("sessionize", &stages.sessionize_walltime),
            ("detect", &stages.detect_walltime),
        ]
        .into_iter()
        .map(|(stage, histogram)| (stage.to_string(), quantile_ms(histogram, q)))
        .collect()
    };
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        name: "live_throughput".into(),
        scale: scale.label().into(),
        records: records.len() as u64,
        wall_seconds: wall,
        throughput_rps: records.len() as f64 / wall,
        p50_stage_latency_ms: stage_map(0.50),
        p99_stage_latency_ms: stage_map(0.99),
        peak_sessions: engine.live_stats().peak_tracked as u64,
        threads: 1,
    };
    report.validate().expect("fresh report is schema-valid");
    let path = report.write().expect("write bench report");
    eprintln!("[quicsand] bench report written to {}", path.display());
}
