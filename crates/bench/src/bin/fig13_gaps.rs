//! Regenerates Fig. 13 (Appendix C): sequential attack gap CDF.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig13::run(&analysis);
    println!("{}", report.render());
}
