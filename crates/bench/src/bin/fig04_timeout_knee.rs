//! Regenerates Fig. 4: session count vs timeout, knee at ~5 minutes.

fn main() {
    let (_, _scenario, analysis) = quicsand_bench::prepare();
    let report = quicsand_core::experiments::fig04::run(&analysis);
    println!("{}", report.render());
}
